module Json = Uxsm_util.Json
module Locks = Uxsm_util.Locks
module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Timing = Uxsm_util.Timing
module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Serialize = Uxsm_mapping.Serialize
module Plan = Uxsm_plan.Plan
module Ptq = Uxsm_ptq.Ptq

let c_requests = Obs.counter "server.requests"
let c_errors = Obs.counter "server.errors"
let c_batches = Obs.counter "server.batches"
let c_connections = Obs.counter "server.connections"
let c_bytes_in = Obs.counter "server.bytes_in"
let c_bytes_out = Obs.counter "server.bytes_out"
let c_overloaded = Obs.counter "server.overloaded"
let c_contended = Obs.counter "server.exec_contended"

(* The executor's own busy-fallback counter: when the server's dispatch
   fan-out finds the warm pool already driven by another domain, the call
   degrades to sequential and this ticks. The server mirrors the delta
   into [server.exec_contended] so saturation is attributable to serving
   rather than guessed from a global number. *)
let c_exec_busy = Obs.counter "exec.sequential_busy"

let h_queue_depth = Obs.histogram "server.queue_depth"

let op_latency op = Obs.histogram ("server." ^ op ^ ".latency")

(* Pre-resolved latency histograms for the fixed op set, so the
   per-request path never touches the registry mutex. *)
let op_latencies =
  List.map
    (fun op -> (op, op_latency op))
    [ "ping"; "register"; "match"; "mappings"; "query"; "query_topk"; "explain"; "save";
      "update"; "stats"; "stats_reset"; "shutdown" ]

let latency_of op =
  match List.assoc_opt op op_latencies with
  | Some h -> h
  | None -> op_latency op

(* Live-service gauges (not Obs counters: they go down). Zero when the
   server runs a non-concurrent transport (stdio) or none at all. *)
type gauges = {
  g_conns_active : int Atomic.t;
  g_queue_depth : int Atomic.t;
  g_queue_capacity : int Atomic.t;
}

type t = {
  cat : Catalog.t;
  exec : Executor.t;
  stop : bool Atomic.t;
  gauges : gauges;
}

let create ?cache_entries ?(exec = Executor.sequential) () =
  {
    cat = Catalog.create ?cache_entries ~exec ();
    exec;
    stop = Atomic.make false;
    gauges =
      {
        g_conns_active = Atomic.make 0;
        g_queue_depth = Atomic.make 0;
        g_queue_capacity = Atomic.make 0;
      };
  }

let catalog t = t.cat
let stopping t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true

exception Fail of string

let ok_or = function
  | Ok v -> v
  | Error msg -> raise (Fail msg)

(* ------------------------------ dispatch -------------------------- *)

let consolidated_json answers =
  Json.List
    (List.map
       (fun (bindings, p) ->
         Json.Assoc
           [ ("probability", Json.Float p); ("matches", Json.Int (List.length bindings)) ])
       (Ptq.consolidate answers))

let dispatch t (req : Protocol.request) : (string * Json.t) list =
  match req with
  | Protocol.Ping -> [ ("reply", Json.String "pong") ]
  | Protocol.Register { name; spec; doc_seed; doc_nodes } ->
    let m, d = ok_or (Catalog.register t.cat ~name ~doc_seed ?doc_nodes spec) in
    [
      ("corpus", Json.String name);
      ("source_elements", Json.Int (Schema.size (Matching.source m)));
      ("target_elements", Json.Int (Schema.size (Matching.target m)));
      ("capacity", Json.Int (Matching.capacity m));
      ("doc_nodes", Json.Int (Doc.size d));
    ]
  | Protocol.Match { corpus } ->
    let m = ok_or (Catalog.matching t.cat corpus) in
    let source = Matching.source m and target = Matching.target m in
    [
      ("corpus", Json.String corpus);
      ("capacity", Json.Int (Matching.capacity m));
      ( "correspondences",
        Json.List
          (List.map
             (fun (c : Matching.corr) ->
               Json.Assoc
                 [
                   ("score", Json.Float c.score);
                   ("source", Json.String (Schema.path_string source c.source));
                   ("target", Json.String (Schema.path_string target c.target));
                 ])
             (Matching.correspondences m)) );
    ]
  | Protocol.Mappings { corpus; h } ->
    let mset = ok_or (Catalog.mapping_set t.cat corpus ~h) in
    [
      ("corpus", Json.String corpus);
      ("h", Json.Int h);
      ("count", Json.Int (Mapping_set.size mset));
      ("o_ratio", Json.Float (Mapping_set.average_o_ratio mset));
      ( "mappings",
        Json.List
          (List.map
             (fun (m, p) ->
               Json.Assoc
                 [
                   ("probability", Json.Float p);
                   ("score", Json.Float (Mapping.score m));
                   ("size", Json.Int (Mapping.size m));
                 ])
             (Mapping_set.mappings mset)) );
    ]
  | Protocol.Query { corpus; pattern; h; tau; k; evaluator } ->
    (* Compiled plans live in the catalog LRU: a repeat query (same
       corpus, pattern, h, τ, k, evaluator) executes a prepared plan
       without re-parsing, re-resolving or re-costing anything. *)
    let plan = ok_or (Catalog.plan t.cat corpus ~pattern ~h ~tau ~k ~force:evaluator) in
    let answers = Ptq.execute plan in
    [
      ("corpus", Json.String corpus);
      ("query", Json.String pattern);
      ("h", Json.Int h);
      ("tau", Json.Float tau);
    ]
    @ (match k with None -> [] | Some k -> [ ("k", Json.Int k) ])
    @ [
        ("evaluator", Json.String (Plan.evaluator_wire (Ptq.physical plan).Plan.evaluator));
        ("relevant", Json.Int (List.length answers));
        ("answers", consolidated_json answers);
      ]
  | Protocol.Explain { corpus; pattern; h; tau } ->
    let plan =
      ok_or (Catalog.plan t.cat corpus ~pattern ~h ~tau ~k:None ~force:`Auto)
    in
    let stats, answers = Ptq.explain_plan plan in
    [
      ("corpus", Json.String corpus);
      ("query", Json.String pattern);
      ("plan", Plan.to_json stats.Ptq.plan);
      ("resolutions", Json.Int stats.Ptq.resolutions);
      ("relevant_mappings", Json.Int stats.Ptq.relevant_mappings);
      ("blocks_used", Json.Int stats.Ptq.blocks_used);
      ("shared_evaluations", Json.Int stats.Ptq.shared_evaluations);
      ("direct_evaluations", Json.Int stats.Ptq.direct_evaluations);
      ("decompositions", Json.Int stats.Ptq.decompositions);
      ("joins", Json.Int stats.Ptq.joins);
      ("answer_sets", Json.Int (List.length (Ptq.consolidate answers)));
    ]
  | Protocol.Save { corpus; h; path } ->
    let mset = ok_or (Catalog.mapping_set t.cat corpus ~h) in
    let text = Serialize.mapping_set_to_string mset in
    let base =
      [ ("corpus", Json.String corpus); ("h", Json.Int h);
        ("bytes", Json.Int (String.length text)) ]
    in
    (match path with
    | None -> base @ [ ("text", Json.String text) ]
    | Some p ->
      let oc = open_out p in
      output_string oc text;
      close_out oc;
      base @ [ ("path", Json.String p) ])
  | Protocol.Update { corpus; delta } ->
    let st = ok_or (Catalog.update t.cat ~name:corpus delta) in
    [
      ("corpus", Json.String corpus);
      ("capacity", Json.Int st.Catalog.u_capacity);
      ("source_elements", Json.Int st.Catalog.u_source_elements);
      ("target_elements", Json.Int st.Catalog.u_target_elements);
      ("msets_patched", Json.Int st.Catalog.u_msets_patched);
      ("trees_patched", Json.Int st.Catalog.u_trees_patched);
      ("plans_invalidated", Json.Int st.Catalog.u_plans_invalidated);
      ("doc_rebuilt", Json.Bool st.Catalog.u_doc_rebuilt);
    ]
  | Protocol.Stats ->
    let snap = Obs.nonzero (Obs.snapshot ()) in
    let cache_stats = Catalog.cache_stats t.cat in
    [
      ( "corpora",
        Json.List
          (List.map
             (fun (name, desc) ->
               Json.Assoc [ ("name", Json.String name); ("spec", Json.String desc) ])
             (Catalog.corpora t.cat)) );
      ( "cache",
        Json.Assoc
          [
            ("capacity", Json.Int (Catalog.cache_capacity t.cat));
            ("entries", Json.Int (Catalog.cache_length t.cat));
            ("shards", Json.Int (Catalog.shard_count t.cat));
            ("hits", Json.Int cache_stats.Lru.hits);
            ("misses", Json.Int cache_stats.Lru.misses);
            ("evictions", Json.Int cache_stats.Lru.evictions);
            ( "keys",
              Json.List
                (List.map
                   (fun k -> Json.String (Catalog.key_string k))
                   (Catalog.cache_keys t.cat)) );
          ] );
      ( "executor",
        Json.Assoc
          [
            ("backend", Json.String (Executor.backend_name t.exec));
            ("jobs", Json.Int (Executor.jobs t.exec));
          ] );
      ( "server",
        Json.Assoc
          [
            ("connections_opened", Json.Int (Obs.value c_connections));
            ("connections_active", Json.Int (Atomic.get t.gauges.g_conns_active));
            ("queue_depth", Json.Int (Atomic.get t.gauges.g_queue_depth));
            ("queue_capacity", Json.Int (Atomic.get t.gauges.g_queue_capacity));
            ("overloaded_rejections", Json.Int (Obs.value c_overloaded));
            ("exec_contended", Json.Int (Obs.value c_contended));
          ] );
      ( "histograms",
        Json.Assoc
          (List.filter_map
             (fun (n, v) ->
               if v.Obs.hv_count = 0 then None
               else
                 Some
                   ( n,
                     Json.Assoc
                       [
                         ("count", Json.Int v.Obs.hv_count);
                         ("p50", Json.Float (Obs.quantile v 0.50));
                         ("p95", Json.Float (Obs.quantile v 0.95));
                         ("p99", Json.Float (Obs.quantile v 0.99));
                       ] ))
             (Obs.histograms ())) );
      ( "counters",
        Json.Assoc (List.map (fun (n, v) -> (n, Json.Int v)) snap.Obs.snap_counters) );
      ( "spans",
        Json.Assoc
          (List.map
             (fun (n, (count, seconds)) ->
               (n, Json.Assoc [ ("count", Json.Int count); ("seconds", Json.Float seconds) ]))
             snap.Obs.snap_spans) );
    ]
  | Protocol.Stats_reset ->
    (* The measurement-window barrier: zero every Obs counter, span and
       histogram (process-global — see the Protocol docs for the pipeline
       semantics). Dispatched as a non-pure request, so every earlier
       request of the batch has completed and been counted before this
       runs. Cache hit/miss totals and live gauges are not Obs state and
       survive. *)
    Obs.reset ();
    [ ("reset", Json.Bool true) ]
  | Protocol.Shutdown ->
    request_stop t;
    [ ("stopping", Json.Bool true) ]

let handle_request t (env : Protocol.envelope) =
  Obs.incr c_requests;
  let op = Protocol.op_name env.req in
  let span = Obs.span ("server.op." ^ op) in
  let started = Timing.now_mono () in
  let observe_latency () = Obs.observe (latency_of op) (Timing.now_mono () -. started) in
  match Obs.time span (fun () -> dispatch t env.req) with
  | fields ->
    observe_latency ();
    Protocol.ok_response ?id:env.id fields
  | exception e ->
    observe_latency ();
    Obs.incr c_errors;
    let msg =
      match e with
      | Fail m -> m
      | Invalid_argument m | Failure m -> m
      | Sys_error m -> m
      | e -> Printexc.to_string e
    in
    Protocol.error_response ?id:env.id msg

let respond_parsed t = function
  | Ok env -> Json.to_string (handle_request t env)
  | Error { Protocol.err_id; message } ->
    Obs.incr c_requests;
    Obs.incr c_errors;
    Json.to_string (Protocol.error_response ?id:err_id message)

let handle_line t line = respond_parsed t (Protocol.parse_line line)

(* Attribute executor busy-fallbacks inside [f] to server dispatch: the
   delta of [exec.sequential_busy] across the call is mirrored into
   [server.exec_contended]. The signal is approximate under concurrent
   non-server executor traffic (a global counter), but the server's
   dispatcher is the only bulk submitter in a serving process, so in
   practice the delta is exactly the dispatcher's lost fan-outs. *)
let record_exec_contention f =
  let before = Obs.value c_exec_busy in
  let finally () =
    let d = Obs.value c_exec_busy - before in
    if d > 0 then Obs.add c_contended d
  in
  Fun.protect ~finally f

(* Batch dispatch: runs of consecutive pure requests fan out through the
   executor (responses merge in index order, so the reply stream is
   identical to sequential handling); Register and Shutdown are barriers
   because they mutate catalog state or stop the server. A run of one
   request is handled inline — inside a pool worker the nested-fanout
   guard would rob it of its own per-request parallelism. *)
let batch_request_units = 2000.0

let respond_run t run =
  match run with
  | [ p ] -> [ respond_parsed t p ]
  | _ when Executor.is_parallel t.exec ->
    (* A pure request normally compiles or replays a whole query plan —
       thousands of node-visit units — so size the batch accordingly for
       the executor's gate: pairs of requests already clear a multi-core
       break-even, while single-request batches never reach here (handled
       inline above). *)
    let cost_hint = float_of_int (List.length run) *. batch_request_units in
    record_exec_contention (fun () ->
        Executor.map_list ~cost_hint t.exec (respond_parsed t) run)
  | _ -> List.map (respond_parsed t) run

let pure_parsed = function
  | Ok env -> Protocol.is_pure env.Protocol.req
  | Error _ -> true (* an error reply touches no state *)

let handle_lines t lines =
  let parsed = List.map Protocol.parse_line lines in
  let rec split_run acc = function
    | p :: rest when pure_parsed p -> split_run (p :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest when not (pure_parsed p) -> go (respond_parsed t p :: acc) rest
    | ps ->
      let run, rest = split_run [] ps in
      go (List.rev_append (respond_run t run) acc) rest
  in
  go [] parsed

(* ----------------------------- transports ------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    if not (stopping t) then
      match input_line ic with
      | line ->
        Obs.add c_bytes_in (String.length line + 1);
        if String.trim line <> "" then begin
          let resp = handle_line t line in
          Obs.add c_bytes_out (String.length resp + 1);
          output_string oc resp;
          output_char oc '\n';
          flush oc
        end;
        loop ()
      | exception End_of_file -> ()
  in
  loop ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    (* lint: allow blocking-under-lock — cn_wlock exists precisely to serialize whole-response writes on one socket; a slow peer stalls only its own connection's writers, never another lock *)
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Pop every complete (newline-terminated) line out of [buf], leaving a
   trailing partial line in place. Blank lines are skipped, not answered. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    String.split_on_char '\n' (String.sub s 0 i)
    |> List.filter (fun l -> String.trim l <> "")

(* --------------------- concurrent accept service ------------------- *)
(* One reader sys-thread per connection parses lines off the socket and
   admits them (or rejects with [overloaded]) into one bounded dispatch
   queue; a single dispatcher sys-thread drains the queue in batches and
   fans runs of pure requests across the warm domain pool. Sys-threads
   interleave inside the main domain (blocking I/O releases the runtime
   lock), so readers cost no parallelism — the compute runs in executor
   domains, exactly as it does for the stdio transport. *)

type conn = {
  cn_id : int;  (** per-connection id, assigned at accept, 1-based *)
  cn_fd : Unix.file_descr;
  cn_wlock : Locks.t;
      (** serializes writes: the dispatcher (responses) and the reader
          (overload rejections) both write — one whole line per [write_all]
          under this lock, so lines never tear or interleave *)
  cn_pending : int Atomic.t;  (** admitted but not yet answered *)
  cn_eof : bool Atomic.t;  (** reader finished (EOF, error or drain) *)
  cn_closed : bool Atomic.t;  (** close-once latch *)
}

type item = {
  it_conn : conn;
  it_line : string;
}

type service = {
  srv : t;
  capacity : int;
  q : item Queue.t;  (** guarded by [m] *)
  m : Locks.t;
  nonempty : Locks.cond;
  mutable readers_live : int;  (** guarded by [m] *)
}

(* Closing is legal only when the reader is done and every admitted
   request was answered; the latch makes the close idempotent across the
   reader/dispatcher race. The latch is flipped under the write lock, so
   no writer can start on a closed fd. *)
let maybe_close g conn =
  if Atomic.get conn.cn_eof && Atomic.get conn.cn_pending = 0 then begin
    Locks.lock conn.cn_wlock;
    let close_now =
      (not (Atomic.get conn.cn_closed)) && Atomic.get conn.cn_pending = 0
    in
    if close_now then Atomic.set conn.cn_closed true;
    Locks.unlock conn.cn_wlock;
    if close_now then begin
      ignore (Atomic.fetch_and_add g.g_conns_active (-1));
      try Unix.close conn.cn_fd with Unix.Unix_error _ -> ()
    end
  end

let write_response conn resp =
  Locks.lock conn.cn_wlock;
  Fun.protect
    ~finally:(fun () -> Locks.unlock conn.cn_wlock)
    (fun () ->
      if not (Atomic.get conn.cn_closed) then begin
        let out = resp ^ "\n" in
        Obs.add c_bytes_out (String.length out);
        (* A vanished client (EPIPE/ECONNRESET; SIGPIPE is ignored while
           serving) must not take the server down — its reader will see
           the hangup and retire the connection. *)
        try write_all conn.cn_fd out with Unix.Unix_error _ -> ()
      end)

(* Best-effort id recovery for a rejected line, so pipelining clients can
   correlate the overload reply without the server executing anything. *)
let line_id line =
  match Json.of_string line with
  | Ok j -> Json.member "id" j
  | Error _ -> None

let admit sv conn line =
  Locks.lock sv.m;
  let depth = Queue.length sv.q in
  if depth >= sv.capacity then begin
    Locks.unlock sv.m;
    Obs.incr c_overloaded;
    write_response conn (Json.to_string (Protocol.overloaded_response ?id:(line_id line) ()))
  end
  else begin
    Atomic.incr conn.cn_pending;
    Queue.push { it_conn = conn; it_line = line } sv.q;
    Atomic.set sv.srv.gauges.g_queue_depth (depth + 1);
    Locks.signal sv.nonempty;
    Locks.unlock sv.m;
    Obs.observe h_queue_depth (float_of_int (depth + 1))
  end

let reader sv conn =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    if not (stopping sv.srv) then
      (* The short select timeout keeps drain responsive while idle. *)
      match Unix.select [ conn.cn_fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ ->
        let n = Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Obs.add c_bytes_in n;
          Buffer.add_subbytes pending chunk 0 n;
          List.iter (admit sv conn) (drain_lines pending);
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  Atomic.set conn.cn_eof true;
  maybe_close sv.srv.gauges conn;
  Locks.lock sv.m;
  sv.readers_live <- sv.readers_live - 1;
  Locks.broadcast sv.nonempty;
  Locks.unlock sv.m

(* Answer one popped batch. Items are processed in arrival order and each
   run's responses are written back in that same order, so every
   connection sees its admitted requests answered in the order it sent
   them (rejections, written by the reader, may overtake — that is what
   request ids are for). *)
let dispatch_items sv items =
  let t = sv.srv in
  Obs.incr c_batches;
  let parsed = List.map (fun it -> (it, Protocol.parse_line it.it_line)) items in
  let deliver (it, resp) =
    write_response it.it_conn resp;
    ignore (Atomic.fetch_and_add it.it_conn.cn_pending (-1));
    maybe_close t.gauges it.it_conn
  in
  let pure (_, p) = pure_parsed p in
  let rec split_run acc = function
    | x :: rest when pure x -> split_run (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> ()
    | ((it, p) :: rest) when not (pure (it, p)) ->
      deliver (it, respond_parsed t p);
      go rest
    | xs ->
      let run, rest = split_run [] xs in
      let resps = respond_run t (List.map snd run) in
      List.iter2 (fun (it, _) resp -> deliver (it, resp)) run resps;
      go rest
  in
  go parsed

let max_dispatch_batch = 64

let dispatcher sv =
  let t = sv.srv in
  let rec loop () =
    Locks.lock sv.m;
    let rec await () =
      if not (Queue.is_empty sv.q) then begin
        let batch = ref [] in
        let n = ref 0 in
        while (not (Queue.is_empty sv.q)) && !n < max_dispatch_batch do
          batch := Queue.pop sv.q :: !batch;
          incr n
        done;
        Atomic.set t.gauges.g_queue_depth (Queue.length sv.q);
        Some (List.rev !batch)
      end
      else if stopping t && sv.readers_live = 0 then None
      else begin
        Locks.wait sv.nonempty sv.m;
        await ()
      end
    in
    let batch = await () in
    Locks.unlock sv.m;
    match batch with
    | None -> ()
    | Some items ->
      dispatch_items sv items;
      loop ()
  in
  loop ()

(* ------------------------------ listeners ------------------------- *)

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) -> raise (Fail (Printf.sprintf "cannot resolve host %S" host)))

let bind_endpoint = function
  | Unix_socket path ->
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 64;
    let cleanup () =
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ()
    in
    (sock, cleanup)
  | Tcp (host, port) ->
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen sock 64;
    let cleanup () = try Unix.close sock with Unix.Unix_error _ -> () in
    (sock, cleanup)

let serve ?(max_queue = 256) ?ready t endpoints =
  if endpoints = [] then invalid_arg "Server.serve: no endpoints";
  if max_queue < 1 then invalid_arg "Server.serve: max_queue must be >= 1";
  let bound = List.map bind_endpoint endpoints in
  let socks = List.map fst bound in
  Atomic.set t.gauges.g_queue_capacity max_queue;
  let sv =
    {
      srv = t;
      capacity = max_queue;
      q = Queue.create ();
      m = Locks.create ~name:"server.queue" ~rank:Locks.rank_queue;
      nonempty = Locks.cond ();
      readers_live = 0;
    }
  in
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> request_stop t)) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  (* A client that hangs up mid-reply must surface as EPIPE on the write,
     not kill the process. *)
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let finally () =
    List.iter (fun (_, cleanup) -> cleanup ()) bound;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally (fun () ->
      (match ready with
      | None -> ()
      | Some f -> f (List.map Unix.getsockname socks));
      let disp = Thread.create dispatcher sv in
      let conns = ref [] in
      let threads = ref [] in
      let next_id = ref 0 in
      let rec accept_loop () =
        if not (stopping t) then begin
          (match Unix.select socks [] [] 0.25 with
          | ready_socks, _, _ ->
            List.iter
              (fun s ->
                match Unix.accept s with
                | fd, _ ->
                  incr next_id;
                  let conn =
                    {
                      cn_id = !next_id;
                      cn_fd = fd;
                      cn_wlock =
                        Locks.create
                          ~name:(Printf.sprintf "server.conn.%d" !next_id)
                          ~rank:Locks.rank_conn_write;
                      cn_pending = Atomic.make 0;
                      cn_eof = Atomic.make false;
                      cn_closed = Atomic.make false;
                    }
                  in
                  Obs.incr c_connections;
                  Atomic.incr t.gauges.g_conns_active;
                  conns := conn :: !conns;
                  Locks.lock sv.m;
                  sv.readers_live <- sv.readers_live + 1;
                  Locks.unlock sv.m;
                  threads := Thread.create (reader sv) conn :: !threads
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
              ready_socks
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          (* Periodic wake-up so the dispatcher re-checks [stopping] even
             when no reader ever signals (a signal-delivered stop with an
             idle queue). *)
          Locks.lock sv.m;
          Locks.broadcast sv.nonempty;
          Locks.unlock sv.m;
          accept_loop ()
        end
      in
      accept_loop ();
      (* Drain: readers notice [stopping] within one select timeout and
         retire; the dispatcher answers everything admitted so far, then
         exits once the queue is empty and no reader remains. *)
      List.iter Thread.join !threads;
      Locks.lock sv.m;
      Locks.broadcast sv.nonempty;
      Locks.unlock sv.m;
      Thread.join disp;
      (* Every connection should have latched closed via its reader or its
         last answered request; sweep for robustness. *)
      List.iter
        (fun conn ->
          Atomic.set conn.cn_eof true;
          maybe_close t.gauges conn)
        !conns;
      Atomic.set t.gauges.g_queue_depth 0)

let serve_unix ?max_queue t ~socket_path = serve ?max_queue t [ Unix_socket socket_path ]

let serve_tcp ?max_queue ?ready t ~host ~port =
  let ready =
    Option.map
      (fun f addrs ->
        match addrs with
        | Unix.ADDR_INET (_, port) :: _ -> f port
        | _ -> ())
      ready
  in
  serve ?max_queue ?ready t [ Tcp (host, port) ]
