module Json = Uxsm_util.Json
module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Serialize = Uxsm_mapping.Serialize
module Plan = Uxsm_plan.Plan
module Ptq = Uxsm_ptq.Ptq

let c_requests = Obs.counter "server.requests"
let c_errors = Obs.counter "server.errors"
let c_batches = Obs.counter "server.batches"
let c_connections = Obs.counter "server.connections"
let c_bytes_in = Obs.counter "server.bytes_in"
let c_bytes_out = Obs.counter "server.bytes_out"

type t = {
  cat : Catalog.t;
  exec : Executor.t;
  stop : bool Atomic.t;
}

let create ?cache_entries ?(exec = Executor.sequential) () =
  { cat = Catalog.create ?cache_entries ~exec (); exec; stop = Atomic.make false }

let catalog t = t.cat
let stopping t = Atomic.get t.stop
let request_stop t = Atomic.set t.stop true

exception Fail of string

let ok_or = function
  | Ok v -> v
  | Error msg -> raise (Fail msg)

(* ------------------------------ dispatch -------------------------- *)

let consolidated_json answers =
  Json.List
    (List.map
       (fun (bindings, p) ->
         Json.Assoc
           [ ("probability", Json.Float p); ("matches", Json.Int (List.length bindings)) ])
       (Ptq.consolidate answers))

let dispatch t (req : Protocol.request) : (string * Json.t) list =
  match req with
  | Protocol.Ping -> [ ("reply", Json.String "pong") ]
  | Protocol.Register { name; spec; doc_seed; doc_nodes } ->
    let m, d = ok_or (Catalog.register t.cat ~name ~doc_seed ?doc_nodes spec) in
    [
      ("corpus", Json.String name);
      ("source_elements", Json.Int (Schema.size (Matching.source m)));
      ("target_elements", Json.Int (Schema.size (Matching.target m)));
      ("capacity", Json.Int (Matching.capacity m));
      ("doc_nodes", Json.Int (Doc.size d));
    ]
  | Protocol.Match { corpus } ->
    let m = ok_or (Catalog.matching t.cat corpus) in
    let source = Matching.source m and target = Matching.target m in
    [
      ("corpus", Json.String corpus);
      ("capacity", Json.Int (Matching.capacity m));
      ( "correspondences",
        Json.List
          (List.map
             (fun (c : Matching.corr) ->
               Json.Assoc
                 [
                   ("score", Json.Float c.score);
                   ("source", Json.String (Schema.path_string source c.source));
                   ("target", Json.String (Schema.path_string target c.target));
                 ])
             (Matching.correspondences m)) );
    ]
  | Protocol.Mappings { corpus; h } ->
    let mset = ok_or (Catalog.mapping_set t.cat corpus ~h) in
    [
      ("corpus", Json.String corpus);
      ("h", Json.Int h);
      ("count", Json.Int (Mapping_set.size mset));
      ("o_ratio", Json.Float (Mapping_set.average_o_ratio mset));
      ( "mappings",
        Json.List
          (List.map
             (fun (m, p) ->
               Json.Assoc
                 [
                   ("probability", Json.Float p);
                   ("score", Json.Float (Mapping.score m));
                   ("size", Json.Int (Mapping.size m));
                 ])
             (Mapping_set.mappings mset)) );
    ]
  | Protocol.Query { corpus; pattern; h; tau; k; evaluator } ->
    (* Compiled plans live in the catalog LRU: a repeat query (same
       corpus, pattern, h, τ, k, evaluator) executes a prepared plan
       without re-parsing, re-resolving or re-costing anything. *)
    let plan = ok_or (Catalog.plan t.cat corpus ~pattern ~h ~tau ~k ~force:evaluator) in
    let answers = Ptq.execute plan in
    [
      ("corpus", Json.String corpus);
      ("query", Json.String pattern);
      ("h", Json.Int h);
      ("tau", Json.Float tau);
    ]
    @ (match k with None -> [] | Some k -> [ ("k", Json.Int k) ])
    @ [
        ("evaluator", Json.String (Plan.evaluator_wire (Ptq.physical plan).Plan.evaluator));
        ("relevant", Json.Int (List.length answers));
        ("answers", consolidated_json answers);
      ]
  | Protocol.Explain { corpus; pattern; h; tau } ->
    let plan =
      ok_or (Catalog.plan t.cat corpus ~pattern ~h ~tau ~k:None ~force:`Auto)
    in
    let stats, answers = Ptq.explain_plan plan in
    [
      ("corpus", Json.String corpus);
      ("query", Json.String pattern);
      ("plan", Plan.to_json stats.Ptq.plan);
      ("resolutions", Json.Int stats.Ptq.resolutions);
      ("relevant_mappings", Json.Int stats.Ptq.relevant_mappings);
      ("blocks_used", Json.Int stats.Ptq.blocks_used);
      ("shared_evaluations", Json.Int stats.Ptq.shared_evaluations);
      ("direct_evaluations", Json.Int stats.Ptq.direct_evaluations);
      ("decompositions", Json.Int stats.Ptq.decompositions);
      ("joins", Json.Int stats.Ptq.joins);
      ("answer_sets", Json.Int (List.length (Ptq.consolidate answers)));
    ]
  | Protocol.Save { corpus; h; path } ->
    let mset = ok_or (Catalog.mapping_set t.cat corpus ~h) in
    let text = Serialize.mapping_set_to_string mset in
    let base =
      [ ("corpus", Json.String corpus); ("h", Json.Int h);
        ("bytes", Json.Int (String.length text)) ]
    in
    (match path with
    | None -> base @ [ ("text", Json.String text) ]
    | Some p ->
      let oc = open_out p in
      output_string oc text;
      close_out oc;
      base @ [ ("path", Json.String p) ])
  | Protocol.Stats ->
    let snap = Obs.nonzero (Obs.snapshot ()) in
    let cache_stats = Catalog.cache_stats t.cat in
    [
      ( "corpora",
        Json.List
          (List.map
             (fun (name, desc) ->
               Json.Assoc [ ("name", Json.String name); ("spec", Json.String desc) ])
             (Catalog.corpora t.cat)) );
      ( "cache",
        Json.Assoc
          [
            ("capacity", Json.Int (Catalog.cache_capacity t.cat));
            ("entries", Json.Int (Catalog.cache_length t.cat));
            ("hits", Json.Int cache_stats.Lru.hits);
            ("misses", Json.Int cache_stats.Lru.misses);
            ("evictions", Json.Int cache_stats.Lru.evictions);
            ( "keys",
              Json.List
                (List.map
                   (fun k -> Json.String (Catalog.key_string k))
                   (Catalog.cache_keys t.cat)) );
          ] );
      ( "executor",
        Json.Assoc
          [
            ("backend", Json.String (Executor.backend_name t.exec));
            ("jobs", Json.Int (Executor.jobs t.exec));
          ] );
      ( "counters",
        Json.Assoc (List.map (fun (n, v) -> (n, Json.Int v)) snap.Obs.snap_counters) );
      ( "spans",
        Json.Assoc
          (List.map
             (fun (n, (count, seconds)) ->
               (n, Json.Assoc [ ("count", Json.Int count); ("seconds", Json.Float seconds) ]))
             snap.Obs.snap_spans) );
    ]
  | Protocol.Shutdown ->
    request_stop t;
    [ ("stopping", Json.Bool true) ]

let handle_request t (env : Protocol.envelope) =
  Obs.incr c_requests;
  let span = Obs.span ("server.op." ^ Protocol.op_name env.req) in
  match Obs.time span (fun () -> dispatch t env.req) with
  | fields -> Protocol.ok_response ?id:env.id fields
  | exception e ->
    Obs.incr c_errors;
    let msg =
      match e with
      | Fail m -> m
      | Invalid_argument m | Failure m -> m
      | Sys_error m -> m
      | e -> Printexc.to_string e
    in
    Protocol.error_response ?id:env.id msg

let respond_parsed t = function
  | Ok env -> Json.to_string (handle_request t env)
  | Error { Protocol.err_id; message } ->
    Obs.incr c_requests;
    Obs.incr c_errors;
    Json.to_string (Protocol.error_response ?id:err_id message)

let handle_line t line = respond_parsed t (Protocol.parse_line line)

(* Batch dispatch: runs of consecutive pure requests fan out through the
   executor (responses merge in index order, so the reply stream is
   identical to sequential handling); Register and Shutdown are barriers
   because they mutate catalog state or stop the server. A run of one
   request is handled inline — inside a pool worker the nested-fanout
   guard would rob it of its own per-request parallelism. *)
let batch_request_units = 2000.0
let handle_lines t lines =
  let parsed = List.map Protocol.parse_line lines in
  let pure = function
    | Ok env -> Protocol.is_pure env.Protocol.req
    | Error _ -> true (* an error reply touches no state *)
  in
  let rec split_run acc = function
    | p :: rest when pure p -> split_run (p :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest when not (pure p) -> go (respond_parsed t p :: acc) rest
    | ps ->
      let run, rest = split_run [] ps in
      let resps =
        match run with
        | [ p ] -> [ respond_parsed t p ]
        | _ when Executor.is_parallel t.exec ->
          (* A pure request normally compiles or replays a whole query
             plan — thousands of node-visit units — so size the batch
             accordingly for the executor's gate: pairs of requests
             already clear a multi-core break-even, while single-request
             batches never reach here (handled inline above). *)
          let cost_hint = float_of_int (List.length run) *. batch_request_units in
          Executor.map_list ~cost_hint t.exec (respond_parsed t) run
        | _ -> List.map (respond_parsed t) run
      in
      go (List.rev_append resps acc) rest
  in
  go [] parsed

(* ----------------------------- transports ------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    if not (stopping t) then
      match input_line ic with
      | line ->
        Obs.add c_bytes_in (String.length line + 1);
        if String.trim line <> "" then begin
          let resp = handle_line t line in
          Obs.add c_bytes_out (String.length resp + 1);
          output_string oc resp;
          output_char oc '\n';
          flush oc
        end;
        loop ()
      | exception End_of_file -> ()
  in
  loop ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Pop every complete (newline-terminated) line out of [buf], leaving a
   trailing partial line in place. Blank lines are skipped, not answered. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    String.split_on_char '\n' (String.sub s 0 i)
    |> List.filter (fun l -> String.trim l <> "")

let serve_conn t fd =
  Obs.incr c_connections;
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    if not (stopping t) then
      (* A short select timeout keeps shutdown (signal or another
         connection's request in the future) responsive even while idle. *)
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Obs.add c_bytes_in n;
          Buffer.add_subbytes pending chunk 0 n;
          (match drain_lines pending with
          | [] -> ()
          | lines ->
            Obs.incr c_batches;
            let out =
              String.concat "" (List.map (fun r -> r ^ "\n") (handle_lines t lines))
            in
            Obs.add c_bytes_out (String.length out);
            write_all fd out);
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with Unix.Unix_error _ -> ())

let serve_unix t ~socket_path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX socket_path);
  Unix.listen sock 16;
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> request_stop t)) in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term
  in
  Fun.protect ~finally (fun () ->
      let rec accept_loop () =
        if not (stopping t) then begin
          (match Unix.select [ sock ] [] [] 0.25 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept sock with
            | fd, _ -> serve_conn t fd
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ())
