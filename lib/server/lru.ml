(* Hash table over a doubly-linked recency list; the list head is the
   most-recently-used entry, the tail the next eviction victim.

   Lock ownership: the structure (table + recency list) is single-owner —
   the caller must hold its own lock (the catalog holds one per corpus
   shard) around every structural operation. The hit/miss/eviction
   counters are atomics, so accounting stays exact even when [stats] is
   read without the owner's lock (the stats endpoint reads while shards
   serve traffic). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with
  | Some h -> h.prev <- Some n
  | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    Atomic.incr t.hits;
    promote t n;
    Some n.value
  | None ->
    Atomic.incr t.misses;
    None

let mem t k = Hashtbl.mem t.tbl k

(* Read without promoting or counting: the catalog's update path walks
   every cached artifact of a corpus to patch it, which is maintenance,
   not demand — it must not skew recency or the hit/miss accounting. *)
let peek t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n -> Some n.value
  | None -> None

let evict_over_capacity t =
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false (* population > 0 implies a tail *)
    | Some victim ->
      unlink t victim;
      Hashtbl.remove t.tbl victim.key;
      Atomic.incr t.evictions
  done

let put t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    promote t n
  | None ->
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.tbl k n;
    push_front t n);
  evict_over_capacity t

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let stats t =
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses; evictions = Atomic.get t.evictions }

let add_stats (a : stats) (b : stats) =
  { hits = a.hits + b.hits; misses = a.misses + b.misses; evictions = a.evictions + b.evictions }

let zero_stats = { hits = 0; misses = 0; evictions = 0 }
