let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'
let is_alpha c = is_upper c || is_lower c

let tokenize name =
  let n = String.length name in
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = name.[i] in
    if not (is_alpha c || is_digit c) then flush ()
    else begin
      let boundary =
        i > 0
        &&
        let p = name.[i - 1] in
        (* aB | 9a | a9 boundaries, and AAb -> A|Ab for acronym suffixes *)
        (is_lower p && is_upper c)
        || (is_digit p && is_alpha c)
        || (is_alpha p && is_digit c)
        || (is_upper p && is_upper c && i + 1 < n && is_lower name.[i + 1])
      in
      if boundary then flush ();
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !out

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let edit_similarity a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int (max la lb))

let trigrams s =
  let s = "##" ^ String.lowercase_ascii s ^ "##" in
  let n = String.length s in
  let out = Hashtbl.create 16 in
  for i = 0 to n - 3 do
    Hashtbl.replace out (String.sub s i 3) ()
  done;
  out

let trigram_similarity a b =
  if String.length a = 0 && String.length b = 0 then 1.0
  else begin
    let ta = trigrams a and tb = trigrams b in
    let inter = Hashtbl.fold (fun g () acc -> if Hashtbl.mem tb g then acc + 1 else acc) ta 0 in
    let total = Hashtbl.length ta + Hashtbl.length tb in
    if total = 0 then 0.0 else 2.0 *. float_of_int inter /. float_of_int total
  end

type synonyms = (string, string list) Hashtbl.t

let default_pairs =
  [
    ("buyer", "customer");
    ("buyer", "purchaser");
    ("seller", "supplier");
    ("seller", "vendor");
    ("supplier", "vendor");
    ("order", "purchase");
    ("order", "po");
    ("id", "identifier");
    ("id", "code");
    ("id", "number");
    ("no", "number");
    ("no", "id");
    ("no", "identifier");
    ("num", "number");
    ("num", "no");
    ("qty", "quantity");
    ("amount", "total");
    ("price", "cost");
    ("unit", "per");
    ("contact", "party");
    ("name", "label");
    ("street", "road");
    ("zip", "postcode");
    ("zip", "postal");
    ("email", "mail");
    ("phone", "telephone");
    ("invoice", "bill");
    ("ship", "deliver");
    ("shipping", "delivery");
    ("line", "item");
    ("date", "day");
    ("country", "nation");
  ]

(* The table is closed transitively: pairs (order, purchase) and (order, po)
   put purchase, po and order in one class, so purchase ~ po too. *)
let synonyms ?(extra = []) () =
  let pairs =
    List.map
      (fun (a, b) -> (String.lowercase_ascii a, String.lowercase_ascii b))
      (default_pairs @ extra)
  in
  let class_of : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let rec find w =
    match Hashtbl.find_opt class_of w with
    | None -> w
    | Some p -> if String.equal p w then w else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace class_of ra rb
  in
  List.iter
    (fun (a, b) ->
      if not (Hashtbl.mem class_of a) then Hashtbl.replace class_of a a;
      if not (Hashtbl.mem class_of b) then Hashtbl.replace class_of b b;
      union a b)
    pairs;
  let members : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  (* lint: allow nondet-iter — synonym classes are consumed by membership tests only, so member order never escapes *)
  Hashtbl.iter
    (fun w _ ->
      let r = find w in
      let prev = try Hashtbl.find members r with Not_found -> [] in
      Hashtbl.replace members r (w :: prev))
    class_of;
  let tbl : synonyms = Hashtbl.create 64 in
  (* lint: allow nondet-iter — each class writes a disjoint key set; order is irrelevant *)
  Hashtbl.iter
    (fun _ ws -> List.iter (fun w -> Hashtbl.replace tbl w (List.filter (fun x -> x <> w) ws)) ws)
    members;
  tbl

let are_synonyms tbl a b =
  String.equal a b
  ||
  match Hashtbl.find_opt tbl a with
  | Some l -> List.mem b l
  | None -> false

let token_pair_score syn a b =
  match syn with
  | Some tbl when are_synonyms tbl a b -> 1.0
  | _ -> if String.equal a b then 1.0 else max (edit_similarity a b) (trigram_similarity a b)

(* Single-letter tokens ("EMail" -> ["e"; "mail"]) are treated as noise
   whenever longer tokens exist. *)
let drop_noise tokens =
  match List.filter (fun t -> String.length t > 1) tokens with
  | [] -> tokens
  | meaningful -> meaningful

let token_similarity ?synonyms a b =
  let ta = drop_noise (tokenize a) and tb = drop_noise (tokenize b) in
  match (ta, tb) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | _ ->
    let best_against other t =
      List.fold_left (fun acc u -> max acc (token_pair_score synonyms t u)) 0.0 other
    in
    let avg side other =
      List.fold_left (fun acc t -> acc +. best_against other t) 0.0 side
      /. float_of_int (List.length side)
    in
    (avg ta tb +. avg tb ta) /. 2.0

let combined ?synonyms a b =
  (0.8 *. token_similarity ?synonyms a b)
  +. (0.1 *. trigram_similarity a b)
  +. (0.1 *. edit_similarity a b)
