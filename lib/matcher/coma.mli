(** A COMA++-style composite schema matcher.

    Combines the linguistic ({!Name_sim}) and structural
    ({!Structure_sim}) measures under one of two strategies mirroring the
    COMA++ options of Table II:

    - {e Context} ([c]): name + root-to-element path similarity — elements
      match when their names {e and} their positions agree;
    - {e Fragment} ([f]): name + children/leaf similarity — subtree shapes
      match locally, ignoring where the fragment sits.

    Candidate selection keeps pairs whose combined score clears [threshold]
    and lies within [delta] of the best score of {e both} elements involved
    (COMA++'s "both directions" selection), which yields the sparse,
    locally-ambiguous matchings the paper's uncertainty model feeds on. *)

type strategy =
  | Context
  | Fragment

type config = {
  strategy : strategy;
  threshold : float;  (** minimum combined score for a correspondence *)
  delta : float;  (** tolerance below an element's best score *)
  name_weight : float;  (** weight of the name measure (structure gets 1 - w) *)
  synonyms : Name_sim.synonyms option;
}

val default_config : strategy -> config
(** threshold 0.55, delta 0.12, name weight 0.55, default synonym table. *)

val pair_score :
  config ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  float
(** Combined score of one element pair under the configuration. *)

val run :
  ?exec:Uxsm_exec.Executor.t ->
  ?config:config ->
  source:Uxsm_schema.Schema.t ->
  target:Uxsm_schema.Schema.t ->
  unit ->
  Uxsm_mapping.Matching.t
(** Match two schemas (default config: {!default_config}[ Context]).

    [exec] (default [Sequential]) scores the |S| x |T| matrix row-parallel
    on a pool of domains; candidate selection stays sequential, so the
    correspondence list is identical for every backend (a tested
    property). *)

val run_with_capacity :
  ?exec:Uxsm_exec.Executor.t ->
  strategy:strategy ->
  capacity:int ->
  source:Uxsm_schema.Schema.t ->
  target:Uxsm_schema.Schema.t ->
  unit ->
  Uxsm_mapping.Matching.t
(** Binary-search the threshold so the matching has (approximately, then
    exactly by truncation of the lowest-scored pairs) [capacity]
    correspondences — used to reproduce Table II's "Cap." column. *)
