module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Executor = Uxsm_exec.Executor

type strategy =
  | Context
  | Fragment

type config = {
  strategy : strategy;
  threshold : float;
  delta : float;
  name_weight : float;
  synonyms : Name_sim.synonyms option;
}

let default_config strategy =
  { strategy; threshold = 0.55; delta = 0.12; name_weight = 0.55; synonyms = Some (Name_sim.synonyms ()) }

(* Combined score of one pair under a given (possibly memoized)
   name-similarity function. *)
let score_with cfg ~name_sim source x target y =
  let name = name_sim (Schema.label source x) (Schema.label target y) in
  let structure =
    match cfg.strategy with
    | Context -> Structure_sim.path_similarity ~name_sim source x target y
    | Fragment ->
      (* Subtree shape plus the enclosing fragment's name: without the
         parent term, every leaf with the same label ties at 1.0 across
         all contexts. *)
      let c = Structure_sim.children_similarity ~name_sim source x target y in
      let l = Structure_sim.leaf_similarity ~name_sim source x target y in
      let p = Structure_sim.parent_similarity ~name_sim source x target y in
      (c +. l +. p) /. 3.0
  in
  (cfg.name_weight *. name) +. ((1.0 -. cfg.name_weight) *. structure)

let pair_score cfg source x target y =
  score_with cfg ~name_sim:(Name_sim.combined ?synonyms:cfg.synonyms) source x target y

(* Scoring an |S| x |T| matrix re-evaluates the same label pairs many times
   (schemas repeat labels like Contact or City), so name similarities are
   memoized per distinct label pair for the duration of one run. *)
let memoized_name_sim cfg =
  let memo : (string * string, float) Hashtbl.t = Hashtbl.create 4096 in
  fun a b ->
    match Hashtbl.find_opt memo (a, b) with
    | Some v -> v
    | None ->
      let v = Name_sim.combined ?synonyms:cfg.synonyms a b in
      Hashtbl.add memo (a, b) v;
      v

(* All pair scores (computed once), plus per-element best scores for the
   both-directions selection. Rows (source elements) score independently on
   the executor; the selection scan below stays sequential, so the pair
   list and bests are identical across backends. One memo serves the whole
   matrix when sequential; parallel rows each get their own ([Hashtbl] is
   not domain-safe). Scores are pure in the labels, so memo placement never
   changes a value. *)
(* One (source, target) pair costs several similarity evaluations (name
   plus the strategy's structural terms), each walking labels and paths —
   order tens of node-visit-equivalent units. Sizes the matrix job for
   the executor's parallelism gate. *)
let pair_units = 20.0

let score_matrix ?(exec = Executor.sequential) cfg source target =
  let ns = Schema.size source and nt = Schema.size target in
  let shared = if Executor.is_parallel exec then None else Some (memoized_name_sim cfg) in
  let cost_hint = float_of_int (ns * nt) *. pair_units in
  let rows =
    (* lint: allow blocking-under-lock — reachable under the catalog shard and Dataset memo locks; the fan-out never blocks on the pool (try_lock or sequential fallback) and scoring is pure compute, so the hold is bounded by the matrix itself *)
    Executor.map_array ~cost_hint exec
      (fun x ->
        let name_sim =
          match shared with
          | Some f -> f
          | None -> memoized_name_sim cfg
        in
        Array.init nt (fun y -> score_with cfg ~name_sim source x target y))
      (Array.init ns Fun.id)
  in
  let best_s = Array.make ns 0.0 and best_t = Array.make nt 0.0 in
  let pairs = ref [] in
  for x = 0 to ns - 1 do
    for y = 0 to nt - 1 do
      let s = rows.(x).(y) in
      if s > best_s.(x) then best_s.(x) <- s;
      if s > best_t.(y) then best_t.(y) <- s;
      if s >= 0.05 then pairs := (x, y, s) :: !pairs
    done
  done;
  (!pairs, best_s, best_t)

let select ~threshold ~delta (pairs, best_s, best_t) =
  List.filter
    (fun (x, y, s) -> s >= threshold && s >= best_s.(x) -. delta && s >= best_t.(y) -. delta)
    pairs
  |> List.sort (fun (x1, y1, s1) (x2, y2, s2) ->
         match Float.compare s2 s1 with
         | 0 -> compare (x1, y1) (x2, y2)
         | c -> c)

(* COMA++ reports coarsely rounded scores (the paper's Figure 1:
   .75/.84/.83/.84); quantizing to 0.02 reproduces the exact ties that make
   many mappings equally plausible. *)
let clamp_score s = min 1.0 (max 0.01 (Float.round (s *. 50.0) /. 50.0))

let matching_of_pairs ~source ~target pairs =
  Matching.create ~source ~target
    (List.map (fun (x, y, s) -> { Matching.source = x; target = y; score = clamp_score s }) pairs)

let run ?(exec = Executor.sequential) ?config ~source ~target () =
  let cfg =
    match config with
    | Some c -> c
    | None -> default_config Context
  in
  let matrix = score_matrix ~exec cfg source target in
  matching_of_pairs ~source ~target (select ~threshold:cfg.threshold ~delta:cfg.delta matrix)

let run_with_capacity ?(exec = Executor.sequential) ~strategy ~capacity ~source ~target () =
  if capacity < 0 then invalid_arg "Coma.run_with_capacity";
  let base = default_config strategy in
  let matrix = score_matrix ~exec base source target in
  let pairs_at threshold delta = select ~threshold ~delta matrix in
  (* Lower thresholds only add pairs; binary-search the largest threshold
     whose selection still reaches [capacity], then truncate the tail. If
     even the lowest threshold is short, widen the delta band. *)
  let rec with_delta delta tries =
    let lo = 0.05 in
    if List.length (pairs_at lo delta) < capacity then
      if tries = 0 then (lo, delta) else with_delta (delta *. 2.0) (tries - 1)
    else begin
      let rec search lo hi i =
        if i = 0 then lo
        else begin
          let mid = (lo +. hi) /. 2.0 in
          if List.length (pairs_at mid delta) >= capacity then search mid hi (i - 1)
          else search lo mid (i - 1)
        end
      in
      (search lo 0.99 20, delta)
    end
  in
  let threshold, delta = with_delta base.delta 6 in
  let pairs = pairs_at threshold delta in
  (* Truncate like COMA selects: every element's best counterpart first
     (rank 1 on either side), then second choices, and so on; score breaks
     ties within a rank. Plain top-score truncation would concentrate the
     whole budget on a few strongly-ambiguous elements. *)
  let rank_of =
    let best_rank : (bool * int, int) Hashtbl.t = Hashtbl.create 64 in
    let note key =
      let r = 1 + (try Hashtbl.find best_rank key with Not_found -> 0) in
      Hashtbl.replace best_rank key r;
      r
    in
    (* pairs are sorted by decreasing score, so per-element ranks follow. *)
    List.map
      (fun ((x, y, _) as pair) ->
        let rs = note (true, x) and rt = note (false, y) in
        (min rs rt, pair))
      pairs
  in
  let kept =
    List.stable_sort (fun (r1, (_, _, s1)) (r2, (_, _, s2)) ->
        match Int.compare r1 r2 with
        | 0 -> Float.compare s2 s1
        | c -> c)
      rank_of
    |> List.filteri (fun i _ -> i < capacity)
    |> List.map snd
  in
  matching_of_pairs ~source ~target kept
