module Schema = Uxsm_schema.Schema

let log2 x = Float.log x /. Float.log 2.0

let entropy mset =
  let n = Mapping_set.size mset in
  let h = ref 0.0 in
  for i = 0 to n - 1 do
    let p = Mapping_set.probability mset i in
    if p > 0.0 then h := !h -. (p *. log2 p)
  done;
  !h

let normalized_entropy mset =
  let n = Mapping_set.size mset in
  if n <= 1 then 0.0 else entropy mset /. log2 (float_of_int n)

(* Distinct choices the mappings make for target [y]; -1 encodes "left
   unmapped by some mapping". *)
let choices mset y =
  let seen = Hashtbl.create 8 in
  for i = 0 to Mapping_set.size mset - 1 do
    let choice =
      match Mapping.source_of (Mapping_set.mapping mset i) y with
      | Some x -> x
      | None -> -1
    in
    Hashtbl.replace seen choice ()
  done;
  seen

let target_ambiguity mset y = Hashtbl.length (choices mset y)

let mapped_targets mset =
  let target = Mapping_set.target mset in
  List.filter
    (fun y ->
      List.exists
        (fun i -> Mapping.source_of (Mapping_set.mapping mset i) y <> None)
        (List.init (Mapping_set.size mset) Fun.id))
    (Schema.elements target)

let ambiguity_histogram mset =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun y ->
      let a = target_ambiguity mset y in
      let prev = try Hashtbl.find counts a with Not_found -> 0 in
      Hashtbl.replace counts a (prev + 1))
    (mapped_targets mset);
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) counts []
  |> List.sort (fun (a1, _) (a2, _) -> Int.compare a1 a2)

let consensus mset =
  List.filter_map
    (fun y ->
      let support = Hashtbl.create 8 in
      for i = 0 to Mapping_set.size mset - 1 do
        match Mapping.source_of (Mapping_set.mapping mset i) y with
        | Some x ->
          let prev = try Hashtbl.find support x with Not_found -> 0.0 in
          Hashtbl.replace support x (prev +. Mapping_set.probability mset i)
        | None -> ()
      done;
      Hashtbl.fold
        (fun x p best ->
          match best with
          | Some (bx, bp) when bp > p || (Float.equal bp p && bx < x) -> best
          | _ -> Some (x, p))
        support None
      |> Option.map (fun (x, p) -> (y, x, p)))
    (mapped_targets mset)

let expected_mapping_size mset =
  let total = ref 0.0 in
  for i = 0 to Mapping_set.size mset - 1 do
    total :=
      !total
      +. (Mapping_set.probability mset i *. float_of_int (Mapping.size (Mapping_set.mapping mset i)))
  done;
  !total
