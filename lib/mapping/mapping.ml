module Schema = Uxsm_schema.Schema

type t = {
  source_to_target : int array;  (* per source element, target or -1 *)
  target_to_source : int array;  (* per target element, source or -1 *)
  n_pairs : int;
  score : float;
}

let of_pairs ~source ~target ~score pairs =
  let s2t = Array.make (Schema.size source) (-1) in
  let t2s = Array.make (Schema.size target) (-1) in
  let add (x, y) =
    if x < 0 || x >= Array.length s2t then invalid_arg "Mapping.of_pairs: source out of range";
    if y < 0 || y >= Array.length t2s then invalid_arg "Mapping.of_pairs: target out of range";
    if s2t.(x) >= 0 then invalid_arg "Mapping.of_pairs: source element mapped twice";
    if t2s.(y) >= 0 then invalid_arg "Mapping.of_pairs: target element mapped twice";
    s2t.(x) <- y;
    t2s.(y) <- x
  in
  List.iter add pairs;
  { source_to_target = s2t; target_to_source = t2s; n_pairs = List.length pairs; score }

let score t = t.score
let size t = t.n_pairs

let pairs t =
  let out = ref [] in
  for x = Array.length t.source_to_target - 1 downto 0 do
    if t.source_to_target.(x) >= 0 then out := (x, t.source_to_target.(x)) :: !out
  done;
  !out

let source_of t y = if t.target_to_source.(y) < 0 then None else Some t.target_to_source.(y)
let same_source_at a b y = a.target_to_source.(y) = b.target_to_source.(y)
let target_of t x = if t.source_to_target.(x) < 0 then None else Some t.source_to_target.(x)

let covers_targets t ys = List.for_all (fun y -> t.target_to_source.(y) >= 0) ys

let inter_size a b =
  let n = ref 0 in
  Array.iteri
    (fun x y -> if y >= 0 && x < Array.length b.source_to_target && b.source_to_target.(x) = y then incr n)
    a.source_to_target;
  !n

let union_size a b = a.n_pairs + b.n_pairs - inter_size a b

let o_ratio a b =
  let u = union_size a b in
  if u = 0 then 1.0 else float_of_int (inter_size a b) /. float_of_int u

let equal a b = a.n_pairs = b.n_pairs && inter_size a b = a.n_pairs

let pp ~source ~target fmt t =
  List.iter
    (fun (x, y) ->
      Format.fprintf fmt "%s~%s@\n" (Schema.label source x) (Schema.label target y))
    (pairs t)
