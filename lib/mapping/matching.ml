module Schema = Uxsm_schema.Schema

type corr = {
  source : Schema.element;
  target : Schema.element;
  score : float;
}

type t = {
  source : Schema.t;
  target : Schema.t;
  corrs : corr list;
  by_pair : (int * int, float) Hashtbl.t;
  by_target : (int, corr list) Hashtbl.t;  (* reversed *)
  by_source : (int, corr list) Hashtbl.t;  (* reversed *)
}

let create ~source ~target corrs =
  let by_pair = Hashtbl.create (List.length corrs) in
  let by_target = Hashtbl.create 64 in
  let by_source = Hashtbl.create 64 in
  let check_and_index (c : corr) =
    if c.source < 0 || c.source >= Schema.size source then
      invalid_arg "Matching.create: source element out of range";
    if c.target < 0 || c.target >= Schema.size target then
      invalid_arg "Matching.create: target element out of range";
    if c.score <= 0.0 || c.score > 1.0 then
      invalid_arg "Matching.create: score must be in (0, 1]";
    if Hashtbl.mem by_pair (c.source, c.target) then
      invalid_arg "Matching.create: duplicate correspondence";
    Hashtbl.add by_pair (c.source, c.target) c.score;
    let prev_t = try Hashtbl.find by_target c.target with Not_found -> [] in
    Hashtbl.replace by_target c.target (c :: prev_t);
    let prev_s = try Hashtbl.find by_source c.source with Not_found -> [] in
    Hashtbl.replace by_source c.source (c :: prev_s)
  in
  List.iter check_and_index corrs;
  { source; target; corrs; by_pair; by_target; by_source }

let source t = t.source
let target t = t.target
let correspondences t = t.corrs
let capacity t = List.length t.corrs
let score t x y = Hashtbl.find_opt t.by_pair (x, y)

let corrs_of_target t y =
  match Hashtbl.find_opt t.by_target y with
  | None -> []
  | Some l -> List.rev l

let corrs_of_source t x =
  match Hashtbl.find_opt t.by_source x with
  | None -> []
  | Some l -> List.rev l

let to_bipartite t =
  Uxsm_assignment.Bipartite.create
    ~n_left:(Schema.size t.source)
    ~n_right:(Schema.size t.target)
    (List.map (fun (c : corr) -> (c.source, c.target, c.score)) t.corrs)

(* --------------------------- incremental deltas -------------------- *)

type delta = {
  set_scores : (string * string * float) list;
  remove_corrs : (string * string) list;
  add_source : (string * string) list;
  add_target : (string * string) list;
}

let empty_delta = { set_scores = []; remove_corrs = []; add_source = []; add_target = [] }

let delta_is_empty d =
  d.set_scores = [] && d.remove_corrs = [] && d.add_source = [] && d.add_target = []

exception Delta_error of string

let deltaf fmt = Printf.ksprintf (fun s -> raise (Delta_error s)) fmt

(* Grow a schema by appending leaves. Elements are pre-order ranks, so
   existing ids stay stable only when every new element lands at the very
   end of the pre-order — i.e. its parent lies on the rightmost
   root-to-leaf spine (its subtree is the pre-order suffix). Anything
   else would renumber elements that cached artifacts reference, so it is
   rejected rather than silently invalidating them. *)
let extend_schema ~side schema adds =
  List.fold_left
    (fun sch (parent_path, name) ->
      match Schema.find_by_path sch parent_path with
      | None -> deltaf "unknown %s element %S" side parent_path
      | Some p ->
        if name = "" then deltaf "%s element name must be non-empty" side;
        if String.contains name '.' then
          deltaf "%s element name %S must not contain '.'" side name;
        if p + Schema.subtree_size sch p <> Schema.size sch then
          deltaf
            "adding under %s %S would renumber existing elements; new elements may only \
             extend the rightmost root-to-leaf spine"
            side parent_path;
        (* [p] is on the rightmost spine, so it is reached from the root
           by taking the last child [level p] times. *)
        let rec append (spec : Schema.spec) depth =
          if depth = 0 then
            { spec with Schema.children = spec.Schema.children @ [ Schema.spec name [] ] }
          else
            match List.rev spec.Schema.children with
            | [] -> assert false
            | last :: before ->
              { spec with Schema.children = List.rev (append last (depth - 1) :: before) }
        in
        Schema.of_spec (append (Schema.to_spec sch) (Schema.level sch p)))
    schema adds

let apply_delta d t =
  try
    let source = extend_schema ~side:"source" t.source d.add_source in
    let target = extend_schema ~side:"target" t.target d.add_target in
    let resolve ~side sch path =
      match Schema.find_by_path sch path with
      | Some e -> e
      | None -> deltaf "unknown %s path %S" side path
    in
    let set =
      List.map
        (fun (sp, tp, w) ->
          if w <= 0.0 || w > 1.0 then deltaf "score for %s ~ %s must be in (0, 1]" sp tp;
          (resolve ~side:"source" source sp, resolve ~side:"target" target tp, w))
        d.set_scores
    in
    let remove =
      List.map
        (fun (sp, tp) ->
          let x = resolve ~side:"source" source sp
          and y = resolve ~side:"target" target tp in
          if not (Hashtbl.mem t.by_pair (x, y)) then
            deltaf "no correspondence %s ~ %s to remove" sp tp;
          (x, y))
        d.remove_corrs
    in
    let triples = List.map (fun (c : corr) -> (c.source, c.target, c.score)) t.corrs in
    let triples' = Uxsm_assignment.Bipartite.apply_edge_delta ~set ~remove triples in
    let corrs = List.map (fun (x, y, w) -> { source = x; target = y; score = w }) triples' in
    Ok (create ~source ~target corrs)
  with
  | Delta_error msg -> Error msg
  | Invalid_argument msg -> Error msg
