(** Schema matchings: the scored correspondences produced by an automatic
    matcher (the paper's [U]).

    A correspondence [(x, y, score)] links source element [x] to target
    element [y] with a similarity in [(0, 1]]. A matching is the full edge
    set between one source and one target schema. *)

type corr = {
  source : Uxsm_schema.Schema.element;
  target : Uxsm_schema.Schema.element;
  score : float;
}

type t

val create :
  source:Uxsm_schema.Schema.t -> target:Uxsm_schema.Schema.t -> corr list -> t
(** Validates element ranges, scores in [(0, 1]], and uniqueness of
    [(source, target)] pairs; raises [Invalid_argument] otherwise. *)

val source : t -> Uxsm_schema.Schema.t
val target : t -> Uxsm_schema.Schema.t

val correspondences : t -> corr list
(** In creation order. *)

val capacity : t -> int
(** Number of correspondences (Table II's "Cap."). *)

val score : t -> Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element -> float option
(** [score m x y] — similarity of the [(x, y)] correspondence, if present. *)

val corrs_of_target : t -> Uxsm_schema.Schema.element -> corr list
(** All correspondences whose target is the given element. *)

val corrs_of_source : t -> Uxsm_schema.Schema.element -> corr list

val to_bipartite : t -> Uxsm_assignment.Bipartite.t
(** The correspondence graph: left = source elements, right = target
    elements, one weighted edge per correspondence. *)

(** {1 Incremental deltas}

    A delta is the unit of incremental corpus maintenance: re-scored,
    added or removed correspondences, plus appended schema elements.
    Elements are addressed by their ['.']-joined path (the
    {!Uxsm_schema.Schema.path_string} format), so deltas survive
    serialization and the wire protocol without leaking pre-order ids. *)

type delta = {
  set_scores : (string * string * float) list;
      (** [(source path, target path, score)] — re-score an existing
          correspondence in place, or add a new one (appended after the
          existing ones) *)
  remove_corrs : (string * string) list;
      (** correspondences to drop; removing an absent one is an error *)
  add_source : (string * string) list;
      (** [(parent path, name)] — append a new leaf element under the
          parent; the parent must lie on the rightmost root-to-leaf
          spine so existing pre-order ids stay stable *)
  add_target : (string * string) list;
}

val empty_delta : delta
val delta_is_empty : delta -> bool

val apply_delta : delta -> t -> (t, string) result
(** Apply a delta: extend the schemas (append-only), resolve paths
    against the extended schemas (so a delta may add an element and a
    correspondence to it in one step), and rewrite the correspondence
    list in the {!Uxsm_assignment.Bipartite.apply_edge_delta} algebra —
    re-scores keep their position, additions append. [Error] (and no
    change) on unknown paths, out-of-range scores, removals of absent
    correspondences, or element additions that would renumber existing
    elements. *)
