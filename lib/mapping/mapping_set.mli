(** Sets of possible mappings with probabilities — the paper's
    [M = {m_1, ..., m_|M|}] with [p_i], i.e. the probabilistic reading of a
    schema matching.

    Generation follows Section V: the top-h mappings of the matching's
    bipartite graph are extracted (either with plain Murty ranking or with
    the divide-and-conquer partitioning of Algorithm 5), and each mapping's
    probability is its score normalized over the h scores. *)

type t

type method_ =
  | Murty  (** rank the whole bipartite graph *)
  | Partitioned  (** Algorithm 5: per-component ranking + merge *)

val generate :
  ?method_:method_ -> ?exec:Uxsm_exec.Executor.t -> h:int -> Matching.t -> t
(** [generate ~h u] — the top-h possible mappings of matching [u] (fewer if
    the space is smaller), probabilities normalized over the set. Default
    method: [Partitioned]. [exec] (default sequential) parallelizes the
    per-component ranking of the [Partitioned] method, which sizes the
    ranking job ([h] times the edge count) for the executor's cost gate —
    small matchings stay sequential even under [Domains]. The resulting
    set is identical for every backend and gate decision. *)

val of_mappings : Matching.t -> (Mapping.t * float) list -> t
(** Build from explicit mappings and probabilities (e.g. the paper's
    Figure 3 running example). Probabilities must be positive; they are
    normalized to sum to 1. *)

val ranked : t -> Uxsm_assignment.Partition.ranked option
(** Component provenance: the reusable per-component ranking state of the
    [Partitioned] method. [None] for [Murty]-generated and
    {!of_mappings} sets, which {!update} therefore rejects. *)

val update : ?exec:Uxsm_exec.Executor.t -> Matching.t -> t -> t
(** [update u' t] — the set [generate ~h u'] computed incrementally from
    [t]'s component provenance: only components of the correspondence
    graph touched by the difference between [t]'s matching and [u'] are
    re-ranked (see {!Uxsm_assignment.Partition.apply_delta}), the heap
    merge resumes from the deepest cached prefix, and probabilities
    renormalize over the new scores. The result is identical to a
    from-scratch [generate] (a tested property); a matching that did
    not come from [Matching.apply_delta] on [t]'s matching simply falls
    back to a full re-rank. Raises [Invalid_argument] when [t] has no
    provenance ({!ranked} is [None]). *)

val matching : t -> Matching.t
val source : t -> Uxsm_schema.Schema.t
val target : t -> Uxsm_schema.Schema.t

val size : t -> int
(** [|M|]. *)

val mapping : t -> int -> Mapping.t
(** [mapping t i] — the [i]-th mapping, [0 <= i < size t]. *)

val probability : t -> int -> float
(** [p_i]; the probabilities sum to 1. *)

val mappings : t -> (Mapping.t * float) list
(** All mappings with probabilities, in decreasing probability order. *)

val average_o_ratio : t -> float
(** Mean pairwise overlap ratio (Table II's "o-ratio"); 1.0 for singleton
    sets. *)

val storage_bytes_naive : t -> int
(** Accounting model for the uncompressed representation: every mapping
    stores all its correspondences, each costing two element ids (4 bytes
    each) plus an 8-byte probability per mapping. Used by the
    compression-ratio experiments (Figure 9a). *)
