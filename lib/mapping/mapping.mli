(** Possible mappings: injective partial functions between the elements of a
    source and a target schema.

    A mapping is one consistent reading of a schema matching — each element
    matches at most one element on the other side (the [m_1..m_5] of the
    paper's Figure 3). *)

type t

val of_pairs :
  source:Uxsm_schema.Schema.t ->
  target:Uxsm_schema.Schema.t ->
  score:float ->
  (Uxsm_schema.Schema.element * Uxsm_schema.Schema.element) list ->
  t
(** [of_pairs ~source ~target ~score pairs] builds a mapping from
    [(source_element, target_element)] correspondences. Raises
    [Invalid_argument] if either side repeats an element or indices are out
    of range. *)

val score : t -> float
(** Sum of the correspondence scores the mapping was built from. *)

val size : t -> int
(** Number of correspondences. *)

val pairs : t -> (Uxsm_schema.Schema.element * Uxsm_schema.Schema.element) list
(** Correspondences sorted by source element. *)

val source_of : t -> Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element option
(** [source_of m y] — the source element corresponding to target element
    [y], if any. This is the lookup direction used by query rewriting and
    the block tree. *)

val same_source_at : t -> t -> Uxsm_schema.Schema.element -> bool
(** [same_source_at a b y] — whether [a] and [b] choose the same source for
    target element [y] (or both none). Equivalent to
    [source_of a y = source_of b y] but allocation-free; the block tree's
    dirty scan compares every (mapping, target element) slot, so the
    option boxing would dominate small updates. *)

val target_of : t -> Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element option

val covers_targets : t -> Uxsm_schema.Schema.element list -> bool
(** Whether every listed target element has a correspondence ("relevant
    mapping" test of Algorithm 3). *)

val inter_size : t -> t -> int
(** Number of correspondences shared by two mappings. *)

val union_size : t -> t -> int

val o_ratio : t -> t -> float
(** The paper's overlap ratio [|m_i ∩ m_j| / |m_i ∪ m_j|]; 1.0 when both
    mappings are empty. *)

val equal : t -> t -> bool
(** Same correspondence set (scores not compared). *)

val pp : source:Uxsm_schema.Schema.t -> target:Uxsm_schema.Schema.t -> Format.formatter -> t -> unit
(** Render as ["src~TGT"] lines, as in Figure 3. *)
