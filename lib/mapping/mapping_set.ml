module Schema = Uxsm_schema.Schema

type t = {
  matching : Matching.t;
  mappings : Mapping.t array;
  probs : float array;
}

type method_ =
  | Murty
  | Partitioned

let normalize scores =
  let total = Array.fold_left ( +. ) 0.0 scores in
  if total <= 0.0 then Array.map (fun _ -> 1.0 /. float_of_int (Array.length scores)) scores
  else Array.map (fun s -> s /. total) scores

let generate ?(method_ = Partitioned) ?(exec = Uxsm_exec.Executor.sequential) ~h u =
  if h <= 0 then invalid_arg "Mapping_set.generate: h must be positive";
  let g = Matching.to_bipartite u in
  let solutions =
    match method_ with
    | Murty -> Uxsm_assignment.Murty.top ~h g
    | Partitioned -> Uxsm_assignment.Partition.top ~exec ~h g
  in
  let source = Matching.source u and target = Matching.target u in
  let mappings =
    Array.of_list
      (List.map
         (fun (s : Uxsm_assignment.Murty.solution) ->
           Mapping.of_pairs ~source ~target ~score:s.score s.pairs)
         solutions)
  in
  let probs = normalize (Array.map Mapping.score mappings) in
  { matching = u; mappings; probs }

let of_mappings u entries =
  if entries = [] then invalid_arg "Mapping_set.of_mappings: empty set";
  List.iter
    (fun (_, p) -> if p <= 0.0 then invalid_arg "Mapping_set.of_mappings: non-positive probability")
    entries;
  let entries = List.stable_sort (fun (_, p1) (_, p2) -> Float.compare p2 p1) entries in
  let mappings = Array.of_list (List.map fst entries) in
  let probs = normalize (Array.of_list (List.map snd entries)) in
  { matching = u; mappings; probs }

let matching t = t.matching
let source t = Matching.source t.matching
let target t = Matching.target t.matching
let size t = Array.length t.mappings
let mapping t i = t.mappings.(i)
let probability t i = t.probs.(i)

let mappings t = List.init (size t) (fun i -> (t.mappings.(i), t.probs.(i)))

let average_o_ratio t =
  let n = size t in
  if n < 2 then 1.0
  else begin
    let total = ref 0.0 in
    let pairs = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        total := !total +. Mapping.o_ratio t.mappings.(i) t.mappings.(j);
        incr pairs
      done
    done;
    !total /. float_of_int !pairs
  end

let storage_bytes_naive t =
  let per_corr = 8 in
  let per_mapping = 8 in
  Array.fold_left (fun acc m -> acc + per_mapping + (per_corr * Mapping.size m)) 0 t.mappings
