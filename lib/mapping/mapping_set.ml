module Schema = Uxsm_schema.Schema
module Obs = Uxsm_obs.Obs

let c_updates = Obs.counter "mapping_set.updates"

type t = {
  matching : Matching.t;
  mappings : Mapping.t array;
  probs : float array;
  ranked : Uxsm_assignment.Partition.ranked option;
      (* component provenance of the Partitioned method; None for Murty
         and of_mappings sets, which cannot be updated incrementally *)
}

type method_ =
  | Murty
  | Partitioned

let normalize scores =
  let total = Array.fold_left ( +. ) 0.0 scores in
  if total <= 0.0 then Array.map (fun _ -> 1.0 /. float_of_int (Array.length scores)) scores
  else Array.map (fun s -> s /. total) scores

let of_solutions ~ranked u solutions =
  let source = Matching.source u and target = Matching.target u in
  let mappings =
    Array.of_list
      (List.map
         (fun (s : Uxsm_assignment.Murty.solution) ->
           Mapping.of_pairs ~source ~target ~score:s.score s.pairs)
         solutions)
  in
  let probs = normalize (Array.map Mapping.score mappings) in
  { matching = u; mappings; probs; ranked }

let generate ?(method_ = Partitioned) ?(exec = Uxsm_exec.Executor.sequential) ~h u =
  if h <= 0 then invalid_arg "Mapping_set.generate: h must be positive";
  let g = Matching.to_bipartite u in
  match method_ with
  | Murty -> of_solutions ~ranked:None u (Uxsm_assignment.Murty.top ~h g)
  | Partitioned ->
    let r = Uxsm_assignment.Partition.rank ~exec ~h g in
    of_solutions ~ranked:(Some r) u (Uxsm_assignment.Partition.solutions r)

let of_mappings u entries =
  if entries = [] then invalid_arg "Mapping_set.of_mappings: empty set";
  List.iter
    (fun (_, p) -> if p <= 0.0 then invalid_arg "Mapping_set.of_mappings: non-positive probability")
    entries;
  let entries = List.stable_sort (fun (_, p1) (_, p2) -> Float.compare p2 p1) entries in
  let mappings = Array.of_list (List.map fst entries) in
  let probs = normalize (Array.of_list (List.map snd entries)) in
  { matching = u; mappings; probs; ranked = None }

let ranked t = t.ranked

let update ?(exec = Uxsm_exec.Executor.sequential) u' t =
  match t.ranked with
  | None ->
    invalid_arg
      "Mapping_set.update: set has no component provenance (generate it with the \
       Partitioned method)"
  | Some r ->
    Obs.incr c_updates;
    let module Partition = Uxsm_assignment.Partition in
    let module Bipartite = Uxsm_assignment.Bipartite in
    let g' = Matching.to_bipartite u' in
    let d = Partition.delta_of_graphs ~old:(Partition.graph r) g' in
    let r' = Partition.apply_delta ~exec d r in
    (* The delta algebra reconstructs the new edge list exactly when [u']
       came from [Matching.apply_delta]; an arbitrary matching (edges
       permuted, sizes shrunk) falls back to a fresh rank so the result
       still equals [generate ~h u'] in every case. *)
    let r' =
      let g = Partition.graph r' in
      if
        Bipartite.edges g = Bipartite.edges g'
        && Bipartite.n_left g = Bipartite.n_left g'
        && Bipartite.n_right g = Bipartite.n_right g'
      then r'
      else Partition.rank ~exec ~h:(Partition.ranked_h r) g'
    in
    (* Rebuild every Mapping.t from the merged solutions. Keying old
       mappings for verbatim reuse was measured slower than rebuilding:
       [Mapping.pairs] reconstructs its list from schema-sized lookup
       arrays on every call, while [Mapping.of_pairs] is a cheap linear
       fill — and a re-score delta shifts most merged scores anyway, so
       the table rarely hit. *)
    of_solutions ~ranked:(Some r') u' (Partition.solutions r')

let matching t = t.matching
let source t = Matching.source t.matching
let target t = Matching.target t.matching
let size t = Array.length t.mappings
let mapping t i = t.mappings.(i)
let probability t i = t.probs.(i)

let mappings t = List.init (size t) (fun i -> (t.mappings.(i), t.probs.(i)))

let average_o_ratio t =
  let n = size t in
  if n < 2 then 1.0
  else begin
    let total = ref 0.0 in
    let pairs = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        total := !total +. Mapping.o_ratio t.mappings.(i) t.mappings.(j);
        incr pairs
      done
    done;
    !total /. float_of_int !pairs
  end

let storage_bytes_naive t =
  let per_corr = 8 in
  let per_mapping = 8 in
  Array.fold_left (fun acc m -> acc + per_mapping + (per_corr * Mapping.size m)) 0 t.mappings
