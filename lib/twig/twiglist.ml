module Doc = Uxsm_xml.Doc

(* Indexed pattern, mirroring Matcher's pre-order numbering. *)
type indexed = {
  labels : string array;
  anchors : string option array;
  values : string option array;
  attr_preds : (string * string) list array;
  branches : (Pattern.axis * int) array array;
  n : int;
}

let index (p : Pattern.t) =
  let n = Pattern.size p in
  let labels = Array.make n "" in
  let anchors = Array.make n None in
  let values = Array.make n None in
  let attr_preds = Array.make n [] in
  let branches = Array.make n [||] in
  let next = ref 0 in
  let rec go (node : Pattern.node) =
    let id = !next in
    incr next;
    labels.(id) <- node.Pattern.label;
    anchors.(id) <- node.Pattern.anchor;
    values.(id) <- node.Pattern.value;
    attr_preds.(id) <- node.Pattern.attrs;
    let kids = List.map (fun (a, c) -> (a, go c)) (Pattern.branches node) in
    branches.(id) <- Array.of_list kids;
    id
  in
  ignore (go p.Pattern.root);
  { labels; anchors; values; attr_preds; branches; n }

(* One surviving candidate of a query node: the document node plus, per
   query branch, the interval of entries in that branch's list lying inside
   this node's subtree. *)
type entry = {
  node : Doc.node;
  ranges : (int * int) array;
}

let matches (p : Pattern.t) doc =
  let idx = index p in
  let candidates qid =
    let pool =
      match idx.anchors.(qid) with
      | Some path -> Doc.nodes_with_path doc path
      | None ->
        if String.equal idx.labels.(qid) Pattern.wildcard then
          List.init (Doc.size doc) Fun.id
        else Doc.nodes_with_label doc idx.labels.(qid)
    in
    let pool =
      if qid = 0 && p.Pattern.axis = Pattern.Child then
        List.filter (fun v -> v = Doc.root doc) pool
      else pool
    in
    List.filter
      (fun v ->
        (match idx.values.(qid) with
        | Some t -> String.equal (Doc.text doc v) t
        | None -> true)
        && List.for_all (fun (k, want) -> Doc.attr doc v k = Some want) idx.attr_preds.(qid))
      pool
  in
  (* Merge the candidate streams into one document-order event list. *)
  let events =
    List.concat (List.init idx.n (fun qid -> List.map (fun v -> (v, qid)) (candidates qid)))
    |> List.sort (fun (v1, q1) (v2, q2) ->
           match Int.compare v1 v2 with 0 -> Int.compare q1 q2 | c -> c)
  in
  let lists : entry list ref array = Array.init idx.n (fun _ -> ref []) in
  let lengths = Array.make idx.n 0 in
  let append qid e =
    lists.(qid) := e :: !(lists.(qid));
    lengths.(qid) <- lengths.(qid) + 1
  in
  (* Stack frames: an open candidate with the child-list lengths recorded at
     push time; on finalize (post-order), the intervals are closed. *)
  let stack : (Doc.node * int * int array) list ref = ref [] in
  let finalize (v, qid, starts) =
    let ranges =
      Array.mapi (fun k (_, cid) -> (starts.(k), lengths.(cid))) idx.branches.(qid)
    in
    (* Prune candidates with an empty interval for some branch: they can
       never contribute a full match. *)
    if Array.for_all (fun (s, e) -> e > s) ranges then append qid { node = v; ranges }
  in
  let pop_closed pre =
    while
      match !stack with
      | (v, _, _) :: _ -> Doc.subtree_end doc v < pre
      | [] -> false
    do
      match !stack with
      | top :: rest ->
        stack := rest;
        finalize top
      | [] -> ()
    done
  in
  List.iter
    (fun (v, qid) ->
      pop_closed v;
      let starts = Array.map (fun (_, cid) -> lengths.(cid)) idx.branches.(qid) in
      stack := (v, qid, starts) :: !stack)
    events;
  List.iter finalize !stack;
  (* Lists were built in reverse (and entries prepended); index them as
     arrays in append order. *)
  let arrays = Array.map (fun l -> Array.of_list (List.rev !l)) lists in
  (* Enumerate bindings from the interval structure; structural predicates
     are re-checked exactly (the intervals over-approximate for same-node
     candidates and parent-child edges). Memoized per list entry. *)
  let memo : (int * int, Binding.t list) Hashtbl.t = Hashtbl.create 256 in
  let rec enum qid ei =
    match Hashtbl.find_opt memo (qid, ei) with
    | Some r -> r
    | None ->
      let e = arrays.(qid).(ei) in
      let base = Binding.unbound idx.n in
      base.(qid) <- e.node;
      let step acc k (axis, cid) =
        match acc with
        | [] -> []
        | _ ->
          let s, stop = e.ranges.(k) in
          let subs = ref [] in
          for ci = stop - 1 downto s do
            let child = arrays.(cid).(ci) in
            let ok =
              match axis with
              | Pattern.Child -> Doc.is_parent doc e.node child.node
              | Pattern.Descendant -> Doc.is_ancestor doc e.node child.node
            in
            if ok then subs := enum cid ci @ !subs
          done;
          if !subs = [] then []
          else List.concat_map (fun a -> List.map (Binding.merge a) !subs) acc
      in
      let r = ref [ base ] in
      Array.iteri (fun k b -> r := step !r k b) idx.branches.(qid);
      Hashtbl.add memo (qid, ei) !r;
      !r
  in
  List.concat (List.init (Array.length arrays.(0)) (fun ei -> enum 0 ei))
  |> List.sort Binding.compare

let count p doc = List.length (matches p doc)
