(** The PTQ query-plan IR: a logical pipeline plus a cost-based choice
    between the two physical evaluators of Section IV.

    Every PTQ runs the same logical pipeline — resolve the pattern against
    the target schema, compute the mapping-coverage table, keep the
    relevant mappings (optionally pruned to the top-k most probable),
    evaluate, merge in mapping-id order, and feed a sink. Only the
    [evaluate] stage has two physical implementations: {!Per_mapping}
    (Algorithm 3 — rewrite and match once per covered (mapping, resolution)
    pair) and {!Per_block} (Algorithm 4 — one shared evaluation per c-block,
    decomposition and stack joins elsewhere). They return identical
    answers; which is faster depends on how much the block tree shares, so
    {!choose} estimates both costs from {!Uxsm_blocktree.Block_tree}
    statistics and picks, unless a [force] override pins the choice.

    This module is pure planning — it never evaluates anything. [Uxsm_ptq]
    compiles its queries through {!choose} and executes the chosen
    operator. *)

(** Physical implementations of the [evaluate] stage. *)
type evaluator =
  | Per_mapping  (** Algorithm 3: rewrite+match per covered mapping *)
  | Per_block  (** Algorithm 4: block-tree sharing *)

type force = [ `Auto | `Basic | `Tree ]
(** Evaluator override: [`Basic] pins {!Per_mapping}, [`Tree] pins
    {!Per_block}, [`Auto] lets the cost model decide. The names match the
    CLI/wire vocabulary ([--evaluator basic|tree|auto]). *)

(** What consumes the merged answers. *)
type sink = Answers | Consolidate | Marginals | Aggregate

(** One logical stage. [Evaluate None] is the unresolved logical stage;
    compilation replaces it with [Evaluate (Some e)]. *)
type op =
  | Resolve  (** pattern → schema resolutions *)
  | Coverage  (** mapping → covered-resolution table *)
  | Relevance_filter  (** drop mappings covering no resolution *)
  | Topk_prune of int  (** keep the k most probable relevant mappings *)
  | Evaluate of evaluator option
  | Ordered_merge  (** merge per-mapping results in mapping-id order *)
  | Sink of sink

type cost = {
  per_mapping : float;  (** estimated Algorithm 3 cost *)
  per_block : float option;  (** estimated Algorithm 4 cost; [None] without a tree *)
}
(** Estimates in rewrite+match node-visit units — comparable to each
    other, not to wall time. *)

(** Why the physical evaluator was selected. *)
type reason =
  | Forced  (** a [`Basic] / [`Tree] override *)
  | No_tree  (** no block tree in the context, only {!Per_mapping} applies *)
  | Cost_based  (** the smaller estimate won *)

type t = {
  ops : op list;  (** the physical pipeline, [Evaluate (Some _)] resolved *)
  evaluator : evaluator;
  reason : reason;
  cost : cost;
  resolutions : int;  (** schema resolutions of the pattern *)
  relevant : int;  (** mappings surviving the relevance filter *)
  evaluated : int;  (** mappings actually evaluated (after top-k pruning) *)
}

val logical : ?k:int -> ?sink:sink -> unit -> op list
(** The logical pipeline before evaluator selection: [Evaluate None], with
    a [Topk_prune] stage iff [k] is given. [sink] defaults to
    {!Answers}. *)

val estimate :
  ?tree:Uxsm_blocktree.Block_tree.t ->
  n_mappings:int ->
  pattern:Uxsm_twig.Pattern.t ->
  resolutions:Uxsm_twig.Binding.t array ->
  coverage:(int * int list) list ->
  unit ->
  cost
(** Cost both evaluators for one compiled query. [coverage] is the
    relevance table actually handed to the evaluator (mapping id → covered
    resolution indices), so top-k pruning is priced in by passing the
    pruned table. The {!Per_block} estimate walks the pattern shape per
    resolution: a node whose resolved target element holds c-blocks costs
    one shared evaluation per block plus the expected residual of
    unclaimed mappings, a blockless leaf costs one visit per mapping, and
    a blockless branch node pays its children plus a per-(mapping, child)
    join charge. *)

val choose :
  ?tree:Uxsm_blocktree.Block_tree.t ->
  ?k:int ->
  ?sink:sink ->
  force:force ->
  n_mappings:int ->
  pattern:Uxsm_twig.Pattern.t ->
  resolutions:Uxsm_twig.Binding.t array ->
  coverage:(int * int list) list ->
  relevant:int ->
  unit ->
  t
(** Select the physical evaluator: honor [force], fall back to
    {!Per_mapping} without a tree, otherwise take the smaller {!estimate}.
    [relevant] is the pre-pruning relevant-mapping count (reported in the
    plan; [coverage] may already be pruned). Raises [Invalid_argument] for
    [~force:`Tree] without a tree. Bumps the [plan.*] counters. *)

val describe : t -> string
(** Multi-line rendering for [--plan] / explain output: the choice, both
    cost estimates, the cardinalities, and the stage pipeline. *)

val to_json : t -> Uxsm_util.Json.t
(** Machine-readable form of {!describe}, embedded in server [explain]
    replies. *)

val evaluator_name : evaluator -> string
(** ["per_mapping"] / ["per_block"] — operator names, used in plan
    renderings. *)

val evaluator_wire : evaluator -> string
(** ["basic"] / ["tree"] — the CLI/wire vocabulary, used when echoing the
    chosen evaluator in query replies. *)

val force_of_string : string -> force option
(** Parse ["basic"] / ["tree"] / ["auto"]; [None] otherwise. *)

val force_to_string : force -> string

val op_name : op -> string
val sink_name : sink -> string
val reason_name : reason -> string
