module Pattern = Uxsm_twig.Pattern
module Binding = Uxsm_twig.Binding
module Block_tree = Uxsm_blocktree.Block_tree
module Json = Uxsm_util.Json
module Obs = Uxsm_obs.Obs

(* Observability: how often plans are compiled, and which way the cost
   model decides when it is free to choose. *)
let c_compiled = Obs.counter "plan.compiled"
let c_forced = Obs.counter "plan.forced"
let c_no_tree = Obs.counter "plan.no_tree"
let c_auto_per_block = Obs.counter "plan.auto_per_block"
let c_auto_per_mapping = Obs.counter "plan.auto_per_mapping"

type evaluator = Per_mapping | Per_block

type force = [ `Auto | `Basic | `Tree ]

type sink = Answers | Consolidate | Marginals | Aggregate

type op =
  | Resolve
  | Coverage
  | Relevance_filter
  | Topk_prune of int
  | Evaluate of evaluator option
  | Ordered_merge
  | Sink of sink

type cost = {
  per_mapping : float;
  per_block : float option;
}

type reason = Forced | No_tree | Cost_based

type t = {
  ops : op list;
  evaluator : evaluator;
  reason : reason;
  cost : cost;
  resolutions : int;
  relevant : int;
  evaluated : int;
}

(* ------------------------------- names ----------------------------- *)

let evaluator_name = function
  | Per_mapping -> "per_mapping"
  | Per_block -> "per_block"

(* The wire vocabulary matches the CLI flag values, not the operator
   names: a forced choice reads back as the word that forced it. *)
let evaluator_wire = function
  | Per_mapping -> "basic"
  | Per_block -> "tree"

let force_of_string = function
  | "basic" -> Some `Basic
  | "tree" -> Some `Tree
  | "auto" -> Some `Auto
  | _ -> None

let force_to_string = function
  | `Basic -> "basic"
  | `Tree -> "tree"
  | `Auto -> "auto"

let sink_name = function
  | Answers -> "answers"
  | Consolidate -> "consolidate"
  | Marginals -> "marginals"
  | Aggregate -> "aggregate"

let reason_name = function
  | Forced -> "forced"
  | No_tree -> "no_tree"
  | Cost_based -> "cost"

let op_name = function
  | Resolve -> "resolve"
  | Coverage -> "coverage"
  | Relevance_filter -> "relevance_filter"
  | Topk_prune k -> Printf.sprintf "topk_prune(%d)" k
  | Evaluate None -> "evaluate"
  | Evaluate (Some e) -> Printf.sprintf "evaluate[%s]" (evaluator_name e)
  | Ordered_merge -> "ordered_merge"
  | Sink s -> Printf.sprintf "sink[%s]" (sink_name s)

let ops_of ?k ?(sink = Answers) evaluator =
  [ Resolve; Coverage; Relevance_filter ]
  @ (match k with None -> [] | Some k -> [ Topk_prune k ])
  @ [ Evaluate evaluator; Ordered_merge; Sink sink ]

let logical ?k ?sink () = ops_of ?k ?sink None

(* ----------------------------- cost model -------------------------- *)

(* The unit of cost is one rewrite+match visit of one pattern node for one
   mapping. Algorithm 3 pays the full pattern for every (mapping,
   resolution) pair it covers; Algorithm 4 replaces the mappings sharing a
   c-block at a resolved node with one evaluation per block, at the price
   of decomposition joins where no block applies. *)

(* Pre-order pattern shape: subquery sizes and child ids, mirroring
   Ptq.index_pattern without the evaluation machinery. *)
type shape = {
  sh_sizes : int array;
  sh_children : int array array;
  sh_n : int;
}

let shape_of (p : Pattern.t) =
  let n = List.length (Pattern.nodes p) in
  let sizes = Array.make n 0 in
  let children = Array.make n [||] in
  let next = ref 0 in
  let rec go (node : Pattern.node) =
    let id = !next in
    incr next;
    let kids = List.map (fun (_, c) -> go c) (Pattern.branches node) in
    children.(id) <- Array.of_list kids;
    sizes.(id) <- !next - id;
    id
  in
  ignore (go p.Pattern.root);
  { sh_sizes = sizes; sh_children = children; sh_n = n }

(* Flat per-join overhead (in node-visit units) charged per mapping and
   child when a subquery decomposes instead of hitting a block. A stack
   join touches both input tables, so it costs about two node visits. *)
let join_charge = 2.0

let estimate ?tree ~n_mappings ~pattern ~resolutions ~coverage () =
  let sh = shape_of pattern in
  (* m_r: how many relevant mappings cover resolution r. *)
  let nr = Array.length resolutions in
  let m_per_res = Array.make nr 0 in
  List.iter
    (fun (_, covered) ->
      List.iter (fun r -> m_per_res.(r) <- m_per_res.(r) + 1) covered)
    coverage;
  let per_mapping =
    Array.fold_left
      (fun acc m -> acc +. (float_of_int m *. float_of_int sh.sh_n))
      0.0 m_per_res
  in
  let per_block =
    match tree with
    | None -> None
    | Some tree ->
      let total_m = float_of_int (max 1 n_mappings) in
      let est_resolution (res : Binding.t) m =
        let mf = float_of_int m in
        let rec est q =
          let ns = Block_tree.node_stats tree res.(q) in
          if ns.Block_tree.ns_blocks > 0 then begin
            (* query_subtree: one shared evaluation per block touched, plus
               direct evaluations for the expected residual mappings no
               block claims. *)
            let b = float_of_int ns.Block_tree.ns_blocks in
            let covered_frac =
              Float.min 1.0 (b *. ns.Block_tree.ns_mean_mappings /. total_m)
            in
            let shared = Float.min b mf in
            let residual = mf *. (1.0 -. covered_frac) in
            (shared +. residual) *. float_of_int sh.sh_sizes.(q)
          end
          else if Array.length sh.sh_children.(q) = 0 then mf
          else
            (* split_query: the root-only match per mapping, the children
               recursively, and one stack join per (mapping, child). *)
            Array.fold_left
              (fun acc c -> acc +. est c +. (join_charge *. mf))
              mf sh.sh_children.(q)
        in
        est 0
      in
      let total = ref 0.0 in
      Array.iteri
        (fun r m -> if m > 0 then total := !total +. est_resolution resolutions.(r) m)
        m_per_res;
      Some !total
  in
  { per_mapping; per_block }

let choose ?tree ?k ?sink ~force ~n_mappings ~pattern ~resolutions ~coverage
    ~relevant () =
  (match (force, tree) with
  | `Tree, None ->
    invalid_arg "Plan.choose: cannot force the per-block evaluator without a block tree"
  | _ -> ());
  let cost = estimate ?tree ~n_mappings ~pattern ~resolutions ~coverage () in
  let evaluator, reason =
    match (force, cost.per_block) with
    | `Basic, _ -> (Per_mapping, Forced)
    | `Tree, _ -> (Per_block, Forced)
    | `Auto, None -> (Per_mapping, No_tree)
    | `Auto, Some pb ->
      ((if pb < cost.per_mapping then Per_block else Per_mapping), Cost_based)
  in
  Obs.incr c_compiled;
  (match (reason, evaluator) with
  | Forced, _ -> Obs.incr c_forced
  | No_tree, _ -> Obs.incr c_no_tree
  | Cost_based, Per_block -> Obs.incr c_auto_per_block
  | Cost_based, Per_mapping -> Obs.incr c_auto_per_mapping);
  {
    ops = ops_of ?k ?sink (Some evaluator);
    evaluator;
    reason;
    cost;
    resolutions = Array.length resolutions;
    relevant;
    evaluated = List.length coverage;
  }

(* ----------------------------- rendering --------------------------- *)

let describe t =
  let cost_line =
    match t.cost.per_block with
    | None -> Printf.sprintf "per_mapping=%.1f, per_block=n/a (no block tree)" t.cost.per_mapping
    | Some pb -> Printf.sprintf "per_mapping=%.1f, per_block=%.1f" t.cost.per_mapping pb
  in
  String.concat "\n"
    ([
       Printf.sprintf "plan: evaluator=%s (%s)" (evaluator_name t.evaluator)
         (reason_name t.reason);
       Printf.sprintf "  cost: %s" cost_line;
       Printf.sprintf "  cardinalities: resolutions=%d relevant=%d evaluated=%d"
         t.resolutions t.relevant t.evaluated;
     ]
    @ List.map (fun op -> Printf.sprintf "  -> %s" (op_name op)) t.ops)

let to_json t =
  Json.Assoc
    [
      ("evaluator", Json.String (evaluator_name t.evaluator));
      ("reason", Json.String (reason_name t.reason));
      ( "cost",
        Json.Assoc
          ([ ("per_mapping", Json.Float t.cost.per_mapping) ]
          @
          match t.cost.per_block with
          | None -> []
          | Some pb -> [ ("per_block", Json.Float pb) ]) );
      ("resolutions", Json.Int t.resolutions);
      ("relevant", Json.Int t.relevant);
      ("evaluated", Json.Int t.evaluated);
      ("ops", Json.List (List.map (fun op -> Json.String (op_name op)) t.ops));
    ]
