module Obs = Uxsm_obs.Obs
module Locks = Uxsm_util.Locks

(* Observability: the executor's scheduling decisions, so the fix for the
   per-call-spawn regression stays measurable. [domains_spawned] counts
   real [Domain.spawn]s — with the warm pool it is bounded by the pool
   width for the whole process lifetime, which the CI parallel-smoke job
   asserts against the bench records. *)
let c_spawned = Obs.counter "exec.domains_spawned"
let c_parallel = Obs.counter "exec.parallel_calls"
let c_tasks = Obs.counter "exec.tasks"
let c_chunks = Obs.counter "exec.chunks"
let c_gate_seq = Obs.counter "exec.sequential_by_gate"
let c_nested_seq = Obs.counter "exec.nested_sequential"
let c_busy_seq = Obs.counter "exec.sequential_busy"

type t =
  | Sequential
  | Domains of int

let sequential = Sequential

let domains n =
  if n < 1 then invalid_arg "Executor.domains: pool size must be >= 1";
  Domains n

let of_jobs n =
  if n < 1 then invalid_arg "Executor.of_jobs: jobs must be >= 1";
  if n = 1 then Sequential else Domains n

let jobs_of_env ?(default = 1) ?(warn = prerr_endline) () =
  match Sys.getenv_opt "UXSM_JOBS" with
  | None -> default
  | Some s when String.trim s = "" -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ ->
      (* A typo'd UXSM_JOBS silently running sequential is how operators
         lose an afternoon; keep the safe fallback but say so. *)
      warn
        (Printf.sprintf "uxsm: ignoring UXSM_JOBS=%S (expected an integer >= 1), using %d" s
           default);
      default)

let jobs = function
  | Sequential -> 1
  | Domains n -> n

let backend_name = function
  | Sequential -> "sequential"
  | Domains _ -> "domains"

let is_parallel = function
  | Sequential | Domains 1 -> false
  | Domains _ -> true

(* --------------------------- cost gate ----------------------------- *)

(* Break-even fan-out size in the plan cost model's node-visit units
   (Uxsm_plan: one rewrite+match visit of one pattern node for one
   mapping, roughly a handful of microseconds of work). Dispatching a
   bulk operation on the warm pool costs a few worker wakeups — tens of
   microseconds — so on a multi-core machine fan-out pays once the job
   carries a few thousand units. On a machine exposing a single hardware
   thread, domain fan-out can never reduce wall time (the domains share
   the one core and add scheduling overhead), so the gate sends every
   cost-hinted call sequential there. Hint-less calls are never gated:
   call sites without a cost model keep the explicit-jobs contract. *)
let default_threshold =
  if Domain.recommended_domain_count () <= 1 then Float.infinity else 4000.0

let parallel_threshold () =
  match Sys.getenv_opt "UXSM_PAR_THRESHOLD" with
  | None -> default_threshold
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f when f >= 0.0 -> f
    | _ -> default_threshold)

(* ---------------------------- warm pool ---------------------------- *)

(* Workers mark their domain so a nested bulk operation degrades to
   sequential execution instead of deadlocking on the pool. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* One pool worker: a parked domain with a single-slot mailbox. The
   submitter stores a job closure and signals; the worker runs it, clears
   the slot, and signals completion on the same condition. One mutex and
   condition per worker keeps submission free of generation counters and
   thundering-herd wakeups — pools here are a handful of domains wide. *)
type worker = {
  w_lock : Locks.t;
  w_cond : Locks.cond;
  mutable w_job : (unit -> unit) option;
  mutable w_stop : bool;
  mutable w_domain : unit Domain.t option;
}

let rec worker_loop w =
  Locks.lock w.w_lock;
  while w.w_job = None && not w.w_stop do
    Locks.wait w.w_cond w.w_lock
  done;
  if w.w_stop then Locks.unlock w.w_lock
  else begin
    let job =
      match w.w_job with
      | Some j -> j
      | None -> assert false
    in
    Locks.unlock w.w_lock;
    (* The job closure confines every exception to its shared error slot;
       this handler only shields the pool from a bug in that closure. *)
    (* lint: allow catch-all — a worker must survive any job to stay parkable; jobs record their own errors *)
    (try job () with _ -> ());
    Locks.lock w.w_lock;
    w.w_job <- None;
    Locks.broadcast w.w_cond;
    Locks.unlock w.w_lock;
    worker_loop w
  end

(* Pool state. [pool_lock] serializes pool growth, bulk submission and
   shutdown: exactly one bulk operation drives the workers at a time (a
   concurrent bulk call from another domain degrades to sequential rather
   than blocking), so workers only ever synchronize through their own
   mailboxes. *)
(* lint: allow domain-unsafe — all access is under pool_lock (see above) *)
let pool : worker array ref = ref [||]

let pool_lock = Locks.create ~name:"exec.pool" ~rank:Locks.rank_pool

(* lint: allow domain-unsafe — read/written only under pool_lock *)
let exit_hook_registered = ref false

let spawn_worker () =
  let w =
    { w_lock = Locks.create ~name:"exec.worker" ~rank:Locks.rank_worker_mailbox;
      w_cond = Locks.cond (); w_job = None; w_stop = false; w_domain = None }
  in
  Obs.incr c_spawned;
  let d =
    Domain.spawn (fun () ->
        Domain.DLS.set in_worker true;
        worker_loop w)
  in
  w.w_domain <- Some d;
  w

(* Callers: must hold [pool_lock]. *)
let shutdown_locked () =
  Array.iter
    (fun w ->
      Locks.lock w.w_lock;
      w.w_stop <- true;
      Locks.broadcast w.w_cond;
      Locks.unlock w.w_lock)
    !pool;
  Array.iter
    (fun w ->
      match w.w_domain with
      (* lint: allow blocking-under-lock — joining under pool_lock is the shutdown contract: every worker has just been told to stop (it parks on its own mailbox and never takes pool_lock), and holding the lock keeps a concurrent submitter from re-growing the pool mid-shutdown *)
      | Some d -> Domain.join d
      | None -> ())
    !pool;
  pool := [||]

let shutdown () = Locks.with_lock pool_lock shutdown_locked

let pool_width () = Locks.with_lock pool_lock (fun () -> Array.length !pool)

(* Must hold [pool_lock]. Grows the pool to [n] workers; the pool keeps
   its high-water width until [shutdown] (workers park when idle). *)
let ensure_pool_locked n =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit shutdown
  end;
  let have = Array.length !pool in
  if have < n then
    pool := Array.append !pool (Array.init (n - have) (fun _ -> spawn_worker ()))

(* ------------------------- bulk operations ------------------------- *)

(* Chunks per pool member: enough slack for the dynamic cursor to
   re-balance skewed item costs (one huge connected component among tiny
   ones), small enough that cursor traffic stays negligible. *)
let chunks_per_member = 4

let chunk_size ~members n = max 1 (n / (members * chunks_per_member))

(* One bulk operation on the warm pool: an atomic cursor hands out chunks
   of [csize] consecutive indices; every participant writes only its own
   slots of [results], so no lock is needed. The first exception wins —
   with its backtrace, captured at the catch site — and aborts the
   remaining chunks. *)
let parallel_map_locked ~members f (arr : 'a array) : 'b array =
  let n = Array.length arr in
  let csize = chunk_size ~members n in
  let n_chunks = (n + csize - 1) / csize in
  let results : 'b option array = Array.make n None in
  let next = Atomic.make 0 in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
  Obs.incr c_parallel;
  Obs.add c_tasks n;
  Obs.add c_chunks n_chunks;
  let work () =
    let rec loop () =
      let start = Atomic.fetch_and_add next csize in
      if start < n && Atomic.get error = None then begin
        let stop = min n (start + csize) in
        (try
           let i = ref start in
           while !i < stop && Atomic.get error = None do
             results.(!i) <- Some (f arr.(!i));
             incr i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set error None (Some (e, bt))));
        loop ()
      end
    in
    loop ()
  in
  (* Workers inherit the submitter's backtrace status so the preserved
     backtrace of a worker-side raise is actually recorded. *)
  let bt_status = Printexc.backtrace_status () in
  let job () =
    if Printexc.backtrace_status () <> bt_status then Printexc.record_backtrace bt_status;
    work ()
  in
  let helpers = min (members - 1) (n_chunks - 1) in
  ensure_pool_locked helpers;
  let assigned = Array.sub !pool 0 helpers in
  Array.iter
    (fun w ->
      Locks.lock w.w_lock;
      w.w_job <- Some job;
      Locks.broadcast w.w_cond;
      Locks.unlock w.w_lock)
    assigned;
  (* The calling domain participates as the pool's last member, then waits
     for every assigned worker to drain its mailbox. *)
  Domain.DLS.set in_worker true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_worker false)
    (fun () ->
      work ();
      Array.iter
        (fun w ->
          Locks.lock w.w_lock;
          while w.w_job <> None do
            Locks.wait w.w_cond w.w_lock
          done;
          Locks.unlock w.w_lock)
        assigned);
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map
    (function
      | Some v -> v
      | None -> assert false)
    results

let map_array ?cost_hint t f arr =
  match t with
  | Sequential -> Array.map f arr
  | Domains pool_size when pool_size <= 1 -> Array.map f arr
  | Domains pool_size ->
    if Array.length arr <= 1 then Array.map f arr
    else if Domain.DLS.get in_worker then begin
      Obs.incr c_nested_seq;
      Array.map f arr
    end
    else begin
      match cost_hint with
      | Some h when h < parallel_threshold () ->
        Obs.incr c_gate_seq;
        Array.map f arr
      | _ ->
        if Locks.try_lock pool_lock then
          Fun.protect
            ~finally:(fun () -> Locks.unlock pool_lock)
            (fun () ->
              parallel_map_locked ~members:(min pool_size (Array.length arr)) f arr)
        else begin
          (* Another domain is driving the pool; racing it for workers is
             not worth blocking for — results are identical either way. *)
          Obs.incr c_busy_seq;
          Array.map f arr
        end
    end

let map_list ?cost_hint t f l =
  if is_parallel t then Array.to_list (map_array ?cost_hint t f (Array.of_list l))
  else List.map f l

let map_reduce ?cost_hint t ~map ~fold ~init arr =
  Array.fold_left fold init (map_array ?cost_hint t map arr)
