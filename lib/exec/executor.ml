type t =
  | Sequential
  | Domains of int

let sequential = Sequential

let domains n =
  if n < 1 then invalid_arg "Executor.domains: pool size must be >= 1";
  Domains n

let of_jobs n =
  if n < 1 then invalid_arg "Executor.of_jobs: jobs must be >= 1";
  if n = 1 then Sequential else Domains n

let jobs_of_env ?(default = 1) () =
  match Sys.getenv_opt "UXSM_JOBS" with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> default)

let jobs = function
  | Sequential -> 1
  | Domains n -> n

let backend_name = function
  | Sequential -> "sequential"
  | Domains _ -> "domains"

let is_parallel = function
  | Sequential | Domains 1 -> false
  | Domains _ -> true

(* Workers mark their domain so a nested bulk operation degrades to
   sequential execution instead of spawning domains recursively. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* One bulk operation: a shared atomic index hands out items dynamically;
   every worker writes only its own slots of [results], so no lock is
   needed. The first exception wins and aborts the remaining items. *)
let parallel_map pool f (arr : 'a array) : 'b array =
  let n = Array.length arr in
  let results : 'b option array = Array.make n None in
  let next = Atomic.make 0 in
  let error : exn option Atomic.t = Atomic.make None in
  let work () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (try results.(i) <- Some (f arr.(i))
         with e -> ignore (Atomic.compare_and_set error None (Some e)));
        loop ()
      end
    in
    loop ()
  in
  let worker () =
    Domain.DLS.set in_worker true;
    work ()
  in
  let spawned = Array.init (min pool n - 1) (fun _ -> Domain.spawn worker) in
  (* The calling domain participates as the pool's last member. *)
  Domain.DLS.set in_worker true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_worker false)
    (fun () ->
      work ();
      Array.iter Domain.join spawned);
  (match Atomic.get error with
  | Some e -> raise e
  | None -> ());
  Array.map
    (function
      | Some v -> v
      | None -> assert false)
    results

let map_array t f arr =
  match t with
  | Sequential -> Array.map f arr
  | Domains pool when pool <= 1 -> Array.map f arr
  | Domains pool ->
    if Array.length arr <= 1 || Domain.DLS.get in_worker then Array.map f arr
    else parallel_map pool f arr

let map_list t f l =
  if is_parallel t then Array.to_list (map_array t f (Array.of_list l)) else List.map f l

let map_reduce t ~map ~fold ~init arr = Array.fold_left fold init (map_array t map arr)
