(** Pluggable execution backend for the embarrassingly-parallel outer loops
    of the pipeline (per-mapping PTQ evaluation, per-component top-h
    ranking, per-element-pair matcher scoring).

    A value of type {!t} names a scheduling policy, not live state:
    [Sequential] runs bulk operations in the calling domain; [Domains n]
    runs them on a pool of [n] OCaml 5 domains (the caller counts as one of
    the [n], so [Domains 4] spawns three workers per bulk operation and
    participates itself).

    {b Determinism.} Every bulk operation merges results in index order, so
    outputs are bit-identical across backends and pool sizes — the only
    observable difference is wall-clock time (and the interleaving of
    {!Uxsm_obs} counter increments, whose totals are preserved). This is
    the contract the differential test suites enforce.

    {b Work distribution} is dynamic (an atomic shared index), so uneven
    item costs — one huge connected component among many tiny ones — do not
    idle the pool.

    {b Nesting.} A bulk operation issued from inside a worker of another
    bulk operation degrades to sequential execution instead of spawning
    domains recursively, so nested parallel call sites (a parallel PTQ
    whose per-mapping work itself calls a parallelized ranking) are safe
    and never oversubscribe the machine.

    {b Exceptions.} If any item's function raises, remaining unstarted
    items are abandoned, the pool is joined, and the first recorded
    exception is re-raised in the caller. *)

type t =
  | Sequential
  | Domains of int
      (** Fixed pool of this many domains per bulk operation, caller
          included. Must be >= 1; [Domains 1] behaves like [Sequential]. *)

val sequential : t

val domains : int -> t
(** [domains n] is [Domains n]; raises [Invalid_argument] when [n < 1]. *)

val of_jobs : int -> t
(** Map a CLI [--jobs N] value to a backend: [1] is [Sequential], [N > 1]
    is [Domains N]. Raises [Invalid_argument] when [n < 1]. *)

val jobs_of_env : ?default:int -> unit -> int
(** The [UXSM_JOBS] environment variable as an integer, or [default]
    (itself defaulting to 1) when it is unset, non-numeric or < 1. The
    CLI and bench harness use this as the default of their [--jobs]
    option — an explicit flag always wins. *)

val jobs : t -> int
(** [Sequential] is [1]; [Domains n] is [n]. *)

val backend_name : t -> string
(** ["sequential"] or ["domains"] — the tag recorded in bench run
    records. *)

val is_parallel : t -> bool
(** [true] iff a bulk operation may run item functions outside the calling
    domain (i.e. [Domains n] with [n > 1]). Call sites use this to pick
    between one shared memo table and per-worker tables. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f a] is [Array.map f a], scheduled by [t]. [f] must be
    safe to call from any domain (pure up to domain-safe effects such as
    {!Uxsm_obs} counters); items may run in any order and concurrently.
    The result is in index order regardless of backend. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List analogue of {!map_array}; preserves list order. *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
(** [map_reduce t ~map ~fold ~init a] maps in parallel, then folds the
    mapped results {e sequentially in index order} in the calling domain —
    the fold sees exactly the sequence [Sequential] would produce, so
    non-commutative folds (heap merges, ordered concatenation) stay
    deterministic. *)
