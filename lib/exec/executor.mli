(** Pluggable execution backend for the embarrassingly-parallel outer loops
    of the pipeline (per-mapping PTQ evaluation, per-component top-h
    ranking, per-element-pair matcher scoring).

    A value of type {!t} names a scheduling policy, not live state:
    [Sequential] runs bulk operations in the calling domain; [Domains n]
    runs them across [n] members of a process-wide {e warm worker pool}
    (the caller counts as one of the [n], so [Domains 4] uses three pool
    workers and participates itself).

    {b The warm pool.} Worker domains are spawned lazily on the first
    parallel bulk call, parked on a mutex/condition mailbox when idle, and
    reused by every subsequent bulk call — spawning is a pool-lifetime
    cost, not a per-call cost (the [exec.domains_spawned] counter stays
    bounded by the pool's high-water width). The pool grows on demand to
    the widest [Domains n] seen, is joined by {!shutdown} (registered
    [at_exit]), and re-warms transparently if used again afterwards.

    {b Chunked scheduling.} A bulk call hands out {e chunks} of
    consecutive indices (sized from the item count and member count, a few
    chunks per member) through an atomic cursor, so dynamic load balancing
    survives skewed item costs without paying cursor traffic per item.

    {b Cost gate.} [map_array ~cost_hint] takes the job's total size in
    the plan cost model's node-visit units ({!Uxsm_plan.Plan.estimate});
    below {!parallel_threshold} the call degrades to sequential — the
    planner's units, not hope, decide when fan-out is worth it. Calls
    without a hint always fan out.

    {b Determinism.} Every bulk operation merges results in index order,
    so outputs are bit-identical across backends, pool sizes and gate
    decisions — the only observable difference is wall-clock time (and the
    interleaving of {!Uxsm_obs} counter increments, whose totals are
    preserved). This is the contract the differential test suites enforce.

    {b Nesting.} A bulk operation issued from inside a pool worker — or
    while another domain is driving the pool — degrades to sequential
    execution instead of spawning or deadlocking, so nested parallel call
    sites are safe and never oversubscribe the machine.

    {b Exceptions.} If any item's function raises, remaining unstarted
    chunks are abandoned, the workers park again, and the first recorded
    exception is re-raised in the caller {e with the worker's backtrace}
    (captured at the catch site, restored with
    [Printexc.raise_with_backtrace]). *)

type t =
  | Sequential
  | Domains of int
      (** Use this many warm-pool members per bulk operation, caller
          included. Must be >= 1; [Domains 1] behaves like [Sequential]. *)

val sequential : t

val domains : int -> t
(** [domains n] is [Domains n]; raises [Invalid_argument] when [n < 1]. *)

val of_jobs : int -> t
(** Map a CLI [--jobs N] value to a backend: [1] is [Sequential], [N > 1]
    is [Domains N]. Raises [Invalid_argument] when [n < 1]. *)

val jobs_of_env : ?default:int -> ?warn:(string -> unit) -> unit -> int
(** The [UXSM_JOBS] environment variable as an integer, or [default]
    (itself defaulting to 1) when it is unset or empty. A malformed or
    out-of-range value (["four"], ["0"], ["-2"]) also falls back to
    [default], but additionally reports the rejected value through [warn]
    (default: one line on stderr) so operator typos don't silently run
    sequential. The CLI and bench harness use this as the default of their
    [--jobs] option — an explicit flag always wins. *)

val jobs : t -> int
(** [Sequential] is [1]; [Domains n] is [n]. *)

val backend_name : t -> string
(** ["sequential"] or ["domains"] — the tag recorded in bench run
    records. *)

val is_parallel : t -> bool
(** [true] iff a bulk operation may run item functions outside the calling
    domain (i.e. [Domains n] with [n > 1]). Call sites use this to pick
    between one shared memo table and per-worker tables. *)

val parallel_threshold : unit -> float
(** The cost gate's break-even point in node-visit units: a hinted bulk
    call below it runs sequentially. Defaults to 4000.0 — a few thousand
    units of work against a few worker wakeups of dispatch cost — or
    [infinity] on a machine exposing a single hardware thread, where
    domain fan-out can never reduce wall time. The [UXSM_PAR_THRESHOLD]
    environment variable (a float >= 0, read per call) overrides the
    default for calibration experiments. *)

val pool_width : unit -> int
(** Current number of live pool workers (the high-water mark of helpers
    any bulk call has needed so far); [0] before the first parallel call
    and after {!shutdown}. *)

val shutdown : unit -> unit
(** Stop and join every pool worker. Registered [at_exit] automatically;
    safe to call repeatedly, and the pool re-warms lazily if a parallel
    bulk call happens afterwards. *)

val map_array : ?cost_hint:float -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ?cost_hint t f a] is [Array.map f a], scheduled by [t] and
    the cost gate (see above). [f] must be safe to call from any domain
    (pure up to domain-safe effects such as {!Uxsm_obs} counters); items
    may run in any order and concurrently. The result is in index order
    regardless of backend. *)

val map_list : ?cost_hint:float -> t -> ('a -> 'b) -> 'a list -> 'b list
(** List analogue of {!map_array}; preserves list order. *)

val map_reduce :
  ?cost_hint:float ->
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
(** [map_reduce t ~map ~fold ~init a] maps in parallel, then folds the
    mapped results {e sequentially in index order} in the calling domain —
    the fold sees exactly the sequence [Sequential] would produce, so
    non-commutative folds (heap merges, ordered concatenation) stay
    deterministic. *)
